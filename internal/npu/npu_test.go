package npu

import (
	"testing"

	"repro/internal/iommu"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/workload"
	"repro/internal/xlate"
)

func testNPU(t *testing.T, cfg Config, makeXlate func(int) xlate.Translator) *NPU {
	t.Helper()
	phys := mem.NewPhysical()
	n, err := New(cfg, phys, sim.NewStats(), makeXlate)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func smallWorkload() workload.Workload {
	return workload.Workload{
		Name: "small",
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: "g0", M: 64, K: 128, N: 64}}},
			{Name: "l1", GEMMs: []workload.GEMM{{Name: "g1", M: 64, K: 64, N: 128}}},
			{Name: "l2", GEMMs: []workload.GEMM{{Name: "g2", M: 32, K: 128, N: 32}}},
		},
	}
}

func TestConfigDerivations(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SpadLines() != (256<<10)/16 {
		t.Fatalf("spad lines = %d", cfg.SpadLines())
	}
	if cfg.PeakMACsPerCycle() != 10*16*16 {
		t.Fatalf("peak = %d", cfg.PeakMACsPerCycle())
	}
}

func TestNewNPUValidation(t *testing.T) {
	phys := mem.NewPhysical()
	cfg := DefaultConfig()
	cfg.Tiles = 0
	if _, err := New(cfg, phys, sim.NewStats(), nil); err == nil {
		t.Fatal("zero tiles accepted")
	}
	cfg = DefaultConfig()
	cfg.MeshW, cfg.MeshH = 2, 2 // 4 < 10 tiles
	if _, err := New(cfg, phys, sim.NewStats(), nil); err == nil {
		t.Fatal("undersized mesh accepted")
	}
}

func TestCompileProducesRunnableProgram(t *testing.T) {
	cfg := DefaultConfig()
	prog, st, err := Compile(smallWorkload(), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ops == 0 || st.TileIters == 0 {
		t.Fatalf("empty compile: %+v", st)
	}
	if prog.Layers != 3 {
		t.Fatalf("layers = %d", prog.Layers)
	}
	if prog.TotalMACs != smallWorkload().MACs() {
		t.Fatalf("MACs = %d", prog.TotalMACs)
	}
	// Ops interleave loads, computes, stores.
	var loads, computes, stores int
	for _, op := range prog.Ops {
		switch op.Kind {
		case OpLoad:
			loads++
		case OpCompute:
			computes++
		case OpStore:
			stores++
		}
	}
	if loads == 0 || computes == 0 || stores == 0 {
		t.Fatalf("op mix: %d loads %d computes %d stores", loads, computes, stores)
	}
	if computes != st.TileIters {
		t.Fatalf("computes %d != tile iters %d", computes, st.TileIters)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	cfg := DefaultConfig()
	if _, _, err := Compile(workload.Workload{Name: "x"}, cfg, 0, DefaultLayout); err == nil {
		t.Fatal("invalid workload compiled")
	}
}

func TestProgramMeasurementDetectsTamper(t *testing.T) {
	cfg := DefaultConfig()
	prog, _, err := Compile(smallWorkload(), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	m1 := prog.Measurement()
	prog.Ops[0].VA ^= 0x40 // redirect one load
	if prog.Measurement() == m1 {
		t.Fatal("measurement insensitive to op tamper")
	}
}

func TestVASpanCoversAllAccesses(t *testing.T) {
	cfg := DefaultConfig()
	prog, _, err := Compile(smallWorkload(), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := prog.VASpan()
	for _, op := range prog.Ops {
		if op.Kind != OpLoad && op.Kind != OpStore {
			continue
		}
		if op.VA < lo || op.VA+mem.VirtAddr(op.Bytes) > hi {
			t.Fatalf("op at %#x outside span [%#x,%#x)", uint64(op.VA), uint64(lo), uint64(hi))
		}
	}
}

func TestExecRunsToCompletion(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	prog, _, err := Compile(smallWorkload(), n.Config(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := n.Core(0)
	ex := NewExec(core, prog, 1)
	end, err := ex.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if end <= 0 || !ex.Done() {
		t.Fatalf("end=%d done=%v", end, ex.Done())
	}
	if ex.ComputeBusy <= 0 {
		t.Fatal("no compute recorded")
	}
	// Runtime is at least the compute lower bound.
	if end < sim.Cycle(prog.IdealComputeCycles) {
		t.Fatalf("end %d below ideal compute %d", end, prog.IdealComputeCycles)
	}
	u := Utilization(prog, end, n.Config().SystolicDim)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestExecResumableSlices(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	prog, _, err := Compile(smallWorkload(), n.Config(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := n.Core(0)

	// Whole-run reference.
	ref := NewExec(core, prog, 1)
	refEnd, err := ref.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	n.ResetTiming()

	// Sliced run with no inter-slice cost must finish at the same time
	// modulo pipeline-drain effects at boundaries (it can only be
	// slower, never faster).
	ex := NewExec(core, prog, 2)
	var now sim.Cycle
	steps := 0
	for !ex.Done() {
		end, err := ex.RunUntil(now, BoundaryTile)
		if err != nil {
			t.Fatal(err)
		}
		now = end
		steps++
	}
	if steps < 2 {
		t.Fatalf("boundary never fired (steps=%d)", steps)
	}
	if now < refEnd {
		t.Fatalf("sliced run (%d) finished before contiguous run (%d)", now, refEnd)
	}
}

func TestBoundaryLayers(t *testing.T) {
	b := BoundaryLayers(2)
	ops := []Op{
		{Kind: OpCompute, Layer: 0, Tile: true},
		{Kind: OpCompute, Layer: 0, Tile: true},
		{Kind: OpCompute, Layer: 1, Tile: true},
		{Kind: OpCompute, Layer: 2, Tile: true},
	}
	fired := -1
	for i, op := range ops {
		if b(op) {
			fired = i
			break
		}
	}
	if fired != 3 {
		t.Fatalf("2-layer boundary fired at op %d, want 3", fired)
	}
}

func TestSetDomainSecureInstruction(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	machine := tee.NewMachine(mem.NewPhysical())
	core, _ := n.Core(0)
	if err := core.SetDomain(machine.NormalContext(), spad.SecureDomain); err == nil {
		t.Fatal("normal world set core ID state")
	}
	if err := core.SetDomain(machine.SecureContext(), spad.SecureDomain); err != nil {
		t.Fatal(err)
	}
	if core.Domain() != spad.SecureDomain || core.World() != mem.Secure {
		t.Fatal("domain not applied")
	}
	if err := core.SetDomain(machine.SecureContext(), 2); err == nil {
		t.Fatal("domain beyond 1-bit ID accepted")
	}
	// Mesh sees the live core state.
	if got := n.Mesh().IDSource(core.Coord()); got != spad.SecureDomain {
		t.Fatalf("mesh sees domain %d", got)
	}
}

func TestSetCoreDomains(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	machine := tee.NewMachine(mem.NewPhysical())
	if err := n.SetCoreDomains(machine.SecureContext(), []int{0, 1, 2}, spad.SecureDomain); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		c, _ := n.Core(i)
		if c.Domain() != spad.SecureDomain {
			t.Fatalf("core %d not secured", i)
		}
	}
	if err := n.SetCoreDomains(machine.SecureContext(), []int{99}, spad.SecureDomain); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestGuardedExecNeedsMappings(t *testing.T) {
	// An exec running behind an IOMMU with no mappings faults.
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	u := iommu.New(iommu.DefaultConfig(8), stats)
	n, err := New(DefaultConfig(), phys, stats, func(int) xlate.Translator { return u })
	if err != nil {
		t.Fatal(err)
	}
	prog, _, err := Compile(smallWorkload(), n.Config(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	core, _ := n.Core(0)
	if _, err := NewExec(core, prog, 1).Run(0); err == nil {
		t.Fatal("unmapped program ran")
	}
	// Map the program's span and it runs.
	lo, hi := prog.VASpan()
	base := mem.PageAlignDown(mem.PhysAddr(lo))
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - base)
	if err := u.Table().MapRange(mem.VirtAddr(base), 0x8000_0000, size, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExec(core, prog, 1).Run(0); err != nil {
		t.Fatalf("mapped program failed: %v", err)
	}
}

func TestPipelineNoCFasterThanSharedMemory(t *testing.T) {
	prog, _, err := Compile(smallWorkload(), DefaultConfig(), 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	run := func(mode TransferMode) sim.Cycle {
		n := testNPU(t, DefaultConfig(), nil)
		stages := []Stage{
			{Core: 0, Program: prog, ActOutBytes: 64 << 10},
			{Core: 1, Program: prog, ActOutBytes: 64 << 10},
			{Core: 2, Program: prog},
		}
		res, err := n.RunPipeline(stages, 4, mode, 0x4000_0000)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCycles
	}
	nocT := run(TransferNoC)
	shmT := run(TransferSharedMemory)
	if nocT >= shmT {
		t.Fatalf("NoC pipeline (%d) not faster than shared-memory (%d)", nocT, shmT)
	}
}

func TestPipelineValidation(t *testing.T) {
	n := testNPU(t, DefaultConfig(), nil)
	if _, err := n.RunPipeline(nil, 1, TransferNoC, 0); err == nil {
		t.Fatal("empty pipeline accepted")
	}
}

func TestTransferModeString(t *testing.T) {
	if TransferNoC.String() != "noc" || TransferSharedMemory.String() != "shared-memory" {
		t.Fatal("mode names")
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		OpLoad: "mvin", OpStore: "mvout", OpCompute: "matmul",
		OpSend: "noc.send", OpRecv: "noc.recv", OpKind(99): "unknown",
	} {
		if k.String() != want {
			t.Fatalf("%d -> %q", k, k.String())
		}
	}
}

func TestDomainOf(t *testing.T) {
	if domainOf(true) != spad.SecureDomain || domainOf(false) != spad.NonSecure {
		t.Fatal("domainOf")
	}
}

func TestProgramValidate(t *testing.T) {
	cfg := DefaultConfig()
	prog, _, err := Compile(smallWorkload(), cfg, 0, DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("compiler output invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"no-ops", func(p *Program) { p.Ops = nil }},
		{"zero-layers", func(p *Program) { p.Layers = 0 }},
		{"layer-out-of-range", func(p *Program) { p.Ops[0].Layer = p.Layers }},
		{"layer-regression", func(p *Program) { p.Ops[len(p.Ops)-1].Layer = 0; p.Ops[0].Layer = 1 }},
		{"empty-load", func(p *Program) { p.Ops[0].Bytes = 0 }},
		{"bad-kind", func(p *Program) { p.Ops[0].Kind = OpKind(99) }},
	}
	for _, c := range cases {
		p, _, err := Compile(smallWorkload(), cfg, 0, DefaultLayout)
		if err != nil {
			t.Fatal(err)
		}
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	// Zero-cycle compute rejected.
	bad := &Program{Name: "x", Layers: 1, Ops: []Op{{Kind: OpCompute, Cycles: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-cycle compute validated")
	}
	// Zero-flit send rejected.
	bad = &Program{Name: "x", Layers: 1, Ops: []Op{{Kind: OpSend, Flits: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-flit send validated")
	}
}
