package npu

import (
	"fmt"

	"repro/internal/dma"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/xlate"
)

// pipeline is the core's execution-unit occupancy state: when the DMA
// load queue, the systolic array, and the store (write) buffer next
// free up. It is core state, not task state — time-shared tasks queue
// behind each other's in-flight work on the same units, which is
// exactly why ID-based isolation (share without draining) beats
// flushing (drain and scrub on every switch).
type pipeline struct {
	dmaFree     sim.Cycle
	computeFree sim.Cycle
	storeFree   sim.Cycle
	// prevComputeEnd gates load run-ahead to one tile (double buffer).
	prevComputeEnd [2]sim.Cycle
}

func (p *pipeline) clampTo(at sim.Cycle) {
	if p.dmaFree < at {
		p.dmaFree = at
	}
	if p.computeFree < at {
		p.computeFree = at
	}
	if p.storeFree < at {
		p.storeFree = at
	}
	if p.prevComputeEnd[0] < at {
		p.prevComputeEnd[0] = at
	}
	if p.prevComputeEnd[1] < at {
		p.prevComputeEnd[1] = at
	}
}

// Core is one accelerator tile: a systolic array, its scratchpads, a
// DMA engine behind an access-control unit, a NoC router controller,
// and the sNPU ID state that tags everything the core touches.
type Core struct {
	id     int
	coord  noc.Coord
	cfg    Config
	domain spad.DomainID
	sp     *spad.Scratchpad
	acc    *spad.Scratchpad
	dmaEng *dma.Engine
	router *noc.RouterController
	stats  *sim.Stats
	pipe   pipeline
	inj    *fault.Injector
	// xl0 is the translator the core booted with; Reset restores it so
	// a pooled tile sheds whatever mechanism (IOMMU, Guarder) the
	// previous experiment cell installed.
	xl0 xlate.Translator

	// Observability: the attached observer (nil = off) and the
	// pre-resolved compute-tile latency histogram the executor feeds.
	obs     *obs.Observer
	obsTile *obs.Histogram
}

// AttachInjector arms this tile with a fault injector: its
// scratchpads, its DMA engine, and its translator if the translator
// has fault sites of its own (the IOMMU's IOTLB does).
func (c *Core) AttachInjector(inj *fault.Injector) {
	c.inj = inj
	c.sp.AttachInjector(inj)
	c.acc.AttachInjector(inj)
	c.dmaEng.AttachInjector(inj)
	if a, ok := c.dmaEng.Translator().(interface{ AttachInjector(*fault.Injector) }); ok {
		a.AttachInjector(inj)
	}
}

// AttachObserver wires this tile into an observability layer: its DMA
// engine, its translator when the translator is instrumented (the
// IOMMU's walk histogram and spans), and an npu.tile.cycles histogram
// of compute-tile latency fed by the executor. Executors created after
// attachment record their spans into the observer's timeline. Nil
// detaches.
func (c *Core) AttachObserver(o *obs.Observer) {
	c.obs = o
	c.obsTile = nil
	if o != nil {
		c.obsTile = o.Registry().Histogram("npu.tile.cycles", obs.DefaultCycleBuckets())
	}
	c.dmaEng.AttachObserver(o, c.id)
	if a, ok := c.dmaEng.Translator().(interface{ AttachObserver(*obs.Observer) }); ok {
		a.AttachObserver(o)
	}
}

// Observer returns the tile's attached observability layer (nil = off).
func (c *Core) Observer() *obs.Observer { return c.obs }

// ResetPipeline returns the core's execution units to idle (the start
// of an independent measurement run).
func (c *Core) ResetPipeline() { c.pipe = pipeline{} }

// Reset power-cycles the tile for arena-style reuse: execution units
// idle, core ID state back to non-secure, both scratchpads scrubbed
// (payload, tags, valid bits, parity — the same guarantees §IV-B's
// flush strawman pays for at every context switch, here paid once per
// pool recycle), the boot translator restored in place of any
// installed mechanism, and fault injectors/observers detached.
func (c *Core) Reset() {
	c.pipe = pipeline{}
	c.domain = spad.NonSecure
	c.sp.Reset()
	c.acc.Reset()
	c.inj = nil
	c.dmaEng.AttachInjector(nil)
	if a, ok := c.dmaEng.Translator().(interface{ AttachInjector(*fault.Injector) }); ok {
		a.AttachInjector(nil)
	}
	c.dmaEng.SetTranslator(c.xl0)
	c.AttachObserver(nil)
}

// NewCore assembles one tile. The DMA engine shares the SoC's DRAM
// channel resource with every other core; the translator is swappable
// per experiment (none / IOMMU / Guarder).
func NewCore(id int, coord noc.Coord, cfg Config, channel *sim.Resource, phys *mem.Physical, xl xlate.Translator, mesh *noc.Mesh, stats *sim.Stats) (*Core, error) {
	sp, err := spad.New(spad.Config{
		Lines:     cfg.SpadLines(),
		LineBytes: cfg.SpadLineBytes,
		Kind:      spad.Exclusive,
		IDBits:    cfg.IDBits,
		Isolated:  cfg.Isolated,
		Parity:    cfg.Isolated,
	}, stats)
	if err != nil {
		return nil, err
	}
	acc, err := spad.New(spad.Config{
		Lines:     cfg.SpadBytes / 4 / cfg.AccLineBytes,
		LineBytes: cfg.AccLineBytes,
		Kind:      spad.Shared,
		IDBits:    cfg.IDBits,
		Isolated:  cfg.Isolated,
		Parity:    cfg.Isolated,
	}, stats)
	if err != nil {
		return nil, err
	}
	c := &Core{
		id:     id,
		coord:  coord,
		cfg:    cfg,
		sp:     sp,
		acc:    acc,
		dmaEng: dma.New(cfg.DMAConfig(), xl, channel, phys, stats),
		stats:  stats,
		xl0:    xl,
	}
	if mesh != nil {
		c.router = noc.NewRouterController(coord, mesh)
	}
	return c, nil
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Coord returns the core's NoC coordinate.
func (c *Core) Coord() noc.Coord { return c.coord }

// Domain returns the core's current ID state.
func (c *Core) Domain() spad.DomainID { return c.domain }

// SetDomain is the secure instruction that flips a core between
// domains (§IV-B: "Setting the ID state of the NPU core can only be
// done through a secure instruction").
func (c *Core) SetDomain(ctx tee.Context, d spad.DomainID) error {
	if err := ctx.RequireSecure(); err != nil {
		return err
	}
	if c.cfg.IDBits < 8 && d >= 1<<c.cfg.IDBits {
		return fmt.Errorf("npu: domain %d exceeds %d-bit core ID state", d, c.cfg.IDBits)
	}
	c.domain = d
	return nil
}

// Scratchpad exposes the core-local (exclusive) scratchpad.
func (c *Core) Scratchpad() *spad.Scratchpad { return c.sp }

// Accumulator exposes the shared accumulator scratchpad.
func (c *Core) Accumulator() *spad.Scratchpad { return c.acc }

// DMA exposes the core's DMA engine.
func (c *Core) DMA() *dma.Engine { return c.dmaEng }

// Router exposes the core's NoC router controller (nil when the core
// is not attached to a mesh).
func (c *Core) Router() *noc.RouterController { return c.router }

// World maps the core's domain onto the hardware world its DMA
// requests are issued in.
func (c *Core) World() mem.World {
	if c.domain == spad.NonSecure {
		return mem.Normal
	}
	return mem.Secure
}
