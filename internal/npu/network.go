package npu

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/quant"
)

// A quantized multi-layer perceptron executed functionally on one
// core: each layer is an int8 GEMM through the scratchpad (with ID
// isolation live on every byte), an integer requantization back to
// int8, and an integer ReLU. This is the path a real integer-only NPU
// stack runs, end to end, with checkable numerics.

// DenseLayer is one fully-connected layer of a quantized network.
type DenseLayer struct {
	// Weights is Out x In in row-major int8.
	Weights Matrix
	// InParams/WParams/OutParams are the affine quantizations of the
	// layer's input, weights, and output activations.
	InParams, WParams, OutParams quant.Params
	// ReLU applies the integer activation after requantization.
	ReLU bool
}

// Network is a stack of dense layers.
type Network struct {
	Layers []DenseLayer
}

// Validate checks layer shape chaining.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("npu: empty network")
	}
	for i, l := range n.Layers {
		if !l.Weights.Valid() || l.Weights.Rows <= 0 {
			return fmt.Errorf("npu: layer %d has invalid weights", i)
		}
		if i > 0 && n.Layers[i-1].Weights.Rows != l.Weights.Cols {
			return fmt.Errorf("npu: layer %d input dim %d != layer %d output dim %d",
				i, l.Weights.Cols, i-1, n.Layers[i-1].Weights.Rows)
		}
	}
	return nil
}

// Infer runs one quantized input vector (int8, length = layer 0's In)
// through the network on the core, returning the final int8
// activations. Operand staging uses the VA window starting at baseVA
// (which must be translated/authorized for the core).
func (n *Network) Infer(core *Core, input []int8, baseVA mem.VirtAddr) ([]int8, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(input) != n.Layers[0].Weights.Cols {
		return nil, fmt.Errorf("npu: input length %d != %d", len(input), n.Layers[0].Weights.Cols)
	}
	act := append([]int8(nil), input...)
	for li, l := range n.Layers {
		// GEMM: (1 x In) * (In x Out). Weights are stored Out x In, so
		// present B as the transpose by swapping the multiplication
		// order: acc[o] = sum_i act[i] * W[o][i].
		a := Matrix{Rows: 1, Cols: len(act), Data: act}
		bt := transpose(l.Weights)
		accs, err := core.FunctionalGEMM(a, bt, baseVA, baseVA+0x4000)
		if err != nil {
			return nil, fmt.Errorf("npu: layer %d: %w", li, err)
		}
		// Fold the zero-point corrections: the GEMM computed raw
		// q_a * q_w sums; affine quantization needs
		// sum (q_a - za)(q_w - zw) = raw - za*sum(q_w) - zw*sum(q_a) + In*za*zw.
		za := l.InParams.ZeroPoint
		zw := l.WParams.ZeroPoint
		in := int32(l.Weights.Cols)
		var sumA int32
		for _, v := range act {
			sumA += int32(v)
		}
		corrected := make([]int32, len(accs))
		for o := range accs {
			var sumW int32
			for i := 0; i < l.Weights.Cols; i++ {
				sumW += int32(l.Weights.At(o, i))
			}
			corrected[o] = accs[o] - za*sumW - zw*sumA + in*za*zw
		}
		// Requantize into the output domain.
		mult := l.InParams.Scale * l.WParams.Scale / l.OutParams.Scale
		rq, err := quant.NewRequant(mult, l.OutParams.ZeroPoint)
		if err != nil {
			return nil, fmt.Errorf("npu: layer %d requant: %w", li, err)
		}
		act = rq.ApplySlice(corrected)
		if l.ReLU {
			act = quant.ReLUInt8(act, l.OutParams.ZeroPoint)
		}
	}
	return act, nil
}

// InferFloat is the floating-point reference the quantized pipeline is
// validated against in tests: dequantize, real matmul, ReLU.
func (n *Network) InferFloat(input []int8) ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	act := n.Layers[0].InParams.DequantizeSlice(input)
	for li, l := range n.Layers {
		out := make([]float64, l.Weights.Rows)
		for o := 0; o < l.Weights.Rows; o++ {
			var acc float64
			for i := 0; i < l.Weights.Cols; i++ {
				acc += act[i] * l.WParams.Dequantize(l.Weights.At(o, i))
			}
			out[o] = acc
		}
		if l.ReLU {
			for i := range out {
				if out[i] < 0 {
					out[i] = 0
				}
			}
		}
		act = out
		_ = li
	}
	return act, nil
}

func transpose(m Matrix) Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			out.Set(c, r, m.At(r, c))
		}
	}
	return out
}
