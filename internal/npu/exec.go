package npu

import (
	"fmt"

	"repro/internal/dma"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/trace"
)

// HangError reports a wedged core caught by the per-core watchdog.
// Detected is the cycle the watchdog fired; the task makes no progress
// after the hang, so recovery (abort, restart, remap) resumes from
// Detected.
type HangError struct {
	Core     int
	Detected sim.Cycle
}

func (e *HangError) Error() string {
	return fmt.Sprintf("npu: core %d hung (watchdog fired at cycle %d)", e.Core, e.Detected)
}

// Exec runs one Program on one Core with the double-buffered pipeline
// a Gemmini-style NPU has: mvin traffic for tile i+1 overlaps the
// matmul of tile i, bounded by the two scratchpad buffers, while
// mvout drains through a write buffer without blocking loads.
//
// Exec is resumable: RunUntil executes ops until a scheduling boundary
// so an (untrusted) driver can time-share a core between tasks at
// op-kernel granularity.
type Exec struct {
	core *Core
	prog *Program
	pos  int

	pendingLoads []dma.Request
	// storeReq is the reusable single-descriptor batch for mvout ops:
	// stores issue one at a time, and building a fresh slice per store
	// was a per-tile heap allocation on the hot path.
	storeReq [1]dma.Request
	taskID   int

	// Trace, when non-nil, records every DMA batch, compute tile, and
	// store as a timeline event.
	Trace *trace.Recorder

	// Totals for reporting.
	ComputeBusy sim.Cycle
	Stalls      sim.Cycle
}

// NewExec binds a program to a core. taskID feeds the translator's
// context-switch detection. When the core carries an observer, the
// executor's spans default onto the observer's timeline (Trace remains
// overridable).
func NewExec(core *Core, prog *Program, taskID int) *Exec {
	return &Exec{core: core, prog: prog, taskID: taskID, Trace: core.obs.Trace()}
}

// Done reports whether the whole program has executed.
func (e *Exec) Done() bool { return e.pos >= len(e.prog.Ops) }

// Pos reports the next op index.
func (e *Exec) Pos() int { return e.pos }

// Program returns the bound program.
func (e *Exec) Program() *Program { return e.prog }

// CurrentLayer reports the layer of the next op (or the last layer
// when done).
func (e *Exec) CurrentLayer() int {
	if e.Done() {
		return e.prog.Layers - 1
	}
	return e.prog.Ops[e.pos].Layer
}

// Boundary decides where RunUntil stops: it is consulted after each
// op-kernel (compute op) with the op just retired.
type Boundary func(op Op) bool

// BoundaryNone never stops (run to completion).
func BoundaryNone(Op) bool { return false }

// BoundaryTile stops after every tile (op-kernel).
func BoundaryTile(op Op) bool { return op.Tile }

// BoundaryLayers stops when n layers have retired since the last
// stop. The counter resets each time the boundary fires, so the same
// closure paces an entire time-shared run.
func BoundaryLayers(n int) Boundary {
	last := -1
	count := 0
	return func(op Op) bool {
		if op.Layer != last {
			if last >= 0 {
				count++
			}
			last = op.Layer
		}
		if count >= n {
			count = 0
			return true
		}
		return false
	}
}

// Suspend clamps the core's pipeline state to `at` so work never
// claims the units earlier than the slice's start (e.g., after a
// flush inserted by the scheduler).
func (e *Exec) Suspend(at sim.Cycle) {
	e.core.pipe.clampTo(at)
}

// RunUntil executes ops starting no earlier than `from` until the
// boundary fires or the program ends. It returns the cycle at which
// the executed slice's work fully retires.
func (e *Exec) RunUntil(from sim.Cycle, boundary Boundary) (sim.Cycle, error) {
	e.Suspend(from)
	e.core.dmaEng.Translator().OnContextSwitch(e.taskID)
	for !e.Done() {
		op := e.prog.Ops[e.pos]
		e.pos++
		switch op.Kind {
		case OpLoad:
			e.pendingLoads = append(e.pendingLoads, dma.Request{
				VA:     op.VA,
				Bytes:  op.Bytes,
				Dir:    dma.ToScratchpad,
				World:  e.core.World(),
				TaskID: e.taskID,
			})
		case OpCompute:
			// Issue the accumulated loads for this tile; they may not
			// start before the buffer from two tiles ago was released.
			pipe := &e.core.pipe
			issueAt := pipe.dmaFree
			if issueAt < pipe.prevComputeEnd[0] {
				issueAt = pipe.prevComputeEnd[0]
			}
			loadsDone, err := e.core.dmaEng.DoPipelined(e.pendingLoads, nil, e.core.domain, issueAt)
			if err != nil {
				return 0, fmt.Errorf("npu: core %d: %w", e.core.id, err)
			}
			e.Trace.Record(trace.Event{
				Name: "mvin-batch", Kind: trace.KindDMA, Core: e.core.id,
				Start: issueAt, End: loadsDone,
			})
			e.pendingLoads = e.pendingLoads[:0]
			pipe.dmaFree = loadsDone
			start := loadsDone
			if start < pipe.computeFree {
				start = pipe.computeFree
			}
			e.Stalls += start - pipe.computeFree
			end := start + op.Cycles
			e.Trace.Record(trace.Event{
				Name: "matmul", Kind: trace.KindCompute, Core: e.core.id,
				Start: start, End: end,
			})
			pipe.computeFree = end
			e.ComputeBusy += op.Cycles
			if e.core.stats != nil {
				e.core.stats.Add(sim.CtrComputeMACs, op.MACs)
				e.core.stats.Add(sim.CtrComputeCycles, int64(op.Cycles))
			}
			if e.core.obsTile != nil {
				e.core.obsTile.Observe(int64(op.Cycles))
			}
			pipe.prevComputeEnd[0] = pipe.prevComputeEnd[1]
			pipe.prevComputeEnd[1] = end
			if e.core.inj.Enabled() {
				// Advance the injector's clock for untimed sites, then
				// check whether this tile wedges mid-op. The hang lands on
				// whichever core is executing when it comes due.
				e.core.inj.Observe(end)
				if _, ok := e.core.inj.Take(fault.CoreHang, end); ok {
					if e.core.stats != nil {
						e.core.stats.Inc(sim.CtrCoreHangs)
					}
					wd := e.core.cfg.HangWatchdog
					if wd <= 0 {
						wd = DefaultHangWatchdog
					}
					return 0, &HangError{Core: e.core.id, Detected: end + wd}
				}
			}
			if boundary(op) {
				return e.retire(), nil
			}
		case OpStore:
			// mvout drains after the producing compute, through the
			// write buffer, without stalling subsequent loads.
			at := e.core.pipe.computeFree
			if at < e.core.pipe.storeFree {
				at = e.core.pipe.storeFree
			}
			e.storeReq[0] = dma.Request{
				VA:     op.VA,
				Bytes:  op.Bytes,
				Dir:    dma.ToMemory,
				World:  e.core.World(),
				TaskID: e.taskID,
			}
			done, err := e.core.dmaEng.DoPipelined(e.storeReq[:], nil, e.core.domain, at)
			if err != nil {
				return 0, fmt.Errorf("npu: core %d: %w", e.core.id, err)
			}
			e.Trace.Record(trace.Event{
				Name: "mvout", Kind: trace.KindDMA, Core: e.core.id,
				Start: at, End: done,
			})
			e.core.pipe.storeFree = done
		case OpSend:
			if e.core.router == nil {
				return 0, fmt.Errorf("npu: core %d has no NoC attachment for %s", e.core.id, op.Kind)
			}
			// Handled by the multi-core executor; standalone Exec treats
			// a send as retiring after compute.
			return 0, fmt.Errorf("npu: %s requires the multicore executor", op.Kind)
		case OpRecv:
			return 0, fmt.Errorf("npu: %s requires the multicore executor", op.Kind)
		default:
			return 0, fmt.Errorf("npu: unknown op kind %d", op.Kind)
		}
	}
	return e.retire(), nil
}

// retire reports when the core's in-flight work lands. With a shared
// core pipeline this includes any still-draining work queued by other
// tasks on the same core — the hardware cannot retire out of order.
func (e *Exec) retire() sim.Cycle {
	pipe := &e.core.pipe
	end := pipe.computeFree
	if pipe.storeFree > end {
		end = pipe.storeFree
	}
	if pipe.dmaFree > end {
		end = pipe.dmaFree
	}
	return end
}

// Run executes the whole program from cycle `from`.
func (e *Exec) Run(from sim.Cycle) (sim.Cycle, error) {
	return e.RunUntil(from, BoundaryNone)
}

// SkipToLayer advances past every op of layers below `layer` without
// executing them: checkpoint-restart re-enters the program at the last
// completed layer boundary, with earlier layers' outputs already in
// (checkpointed) DRAM.
func (e *Exec) SkipToLayer(layer int) {
	for e.pos < len(e.prog.Ops) && e.prog.Ops[e.pos].Layer < layer {
		e.pos++
	}
	e.pendingLoads = e.pendingLoads[:0]
}

// Utilization is the fraction of elapsed cycles the array did useful
// work at peak rate, the Fig. 1 metric.
func Utilization(prog *Program, elapsed sim.Cycle, dim int) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(prog.TotalMACs) / float64(int64(dim)*int64(dim)) / float64(elapsed)
}

// FlushLiveBytes reports what a context-switch flush must save and
// restore for this program. At an op-kernel boundary the input
// buffers are clean (re-fetchable from DRAM), so the dirty state is
// the accumulator's partial-sum tile.
func FlushLiveBytes(prog *Program) uint64 { return prog.AccTileBytes }

// domainOf is a small helper used by multicore wiring.
func domainOf(secure bool) spad.DomainID {
	if secure {
		return spad.SecureDomain
	}
	return spad.NonSecure
}
