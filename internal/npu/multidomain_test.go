package npu

// §VII "Multiple Secure Domains": widening the per-line ID state to
// more than one bit gives multiple hardware-isolated secure domains.
// These tests run the whole mechanism stack — core ID states,
// scratchpad rules, NoC peephole — with four domains.

import (
	"errors"
	"testing"

	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
)

func fourDomainNPU(t *testing.T) (*NPU, *tee.Machine) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.IDBits = 2 // four domains
	phys := mem.NewPhysical()
	n, err := New(cfg, phys, sim.NewStats(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return n, tee.NewMachine(phys)
}

func TestMultiDomainCoreIDStates(t *testing.T) {
	n, machine := fourDomainNPU(t)
	sec := machine.SecureContext()
	for d := spad.DomainID(0); d < 4; d++ {
		core, _ := n.Core(int(d))
		if err := core.SetDomain(sec, d); err != nil {
			t.Fatalf("domain %d: %v", d, err)
		}
	}
	core, _ := n.Core(0)
	if err := core.SetDomain(sec, 4); err == nil {
		t.Fatal("domain 4 accepted with 2-bit ID state")
	}
}

func TestMultiDomainScratchpadPairwiseIsolation(t *testing.T) {
	n, machine := fourDomainNPU(t)
	sec := machine.SecureContext()
	core, _ := n.Core(0)
	sp := core.Scratchpad()
	// Each domain writes its own line.
	for d := spad.DomainID(0); d < 4; d++ {
		if err := sp.Write(d, int(d), []byte{byte(d + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Every cross-domain read is denied; same-domain reads pass.
	buf := make([]byte, sp.LineBytes())
	for reader := spad.DomainID(0); reader < 4; reader++ {
		for line := 0; line < 4; line++ {
			err := sp.Read(reader, line, buf)
			if int(reader) == line && err != nil {
				t.Fatalf("domain %d denied its own line: %v", reader, err)
			}
			if int(reader) != line && !errors.Is(err, spad.ErrIsolation) {
				t.Fatalf("domain %d read domain %d's line: %v", reader, line, err)
			}
		}
	}
	_ = sec
}

func TestMultiDomainNoCPeephole(t *testing.T) {
	n, machine := fourDomainNPU(t)
	sec := machine.SecureContext()
	// Cores 0,1 in domain 2; core 2 in domain 3.
	for i, d := range []spad.DomainID{2, 2, 3} {
		core, _ := n.Core(i)
		if err := core.SetDomain(sec, d); err != nil {
			t.Fatal(err)
		}
	}
	c0, _ := n.Core(0)
	c1, _ := n.Core(1)
	c2, _ := n.Core(2)
	// Same-domain transfer passes.
	if _, err := c0.Router().Transfer(c1.Coord(), 4, nil, 0); err != nil {
		t.Fatalf("same-domain transfer denied: %v", err)
	}
	// Cross-domain transfer (domain 2 -> domain 3) is rejected even
	// though both are "secure" domains.
	if _, err := c0.Router().Transfer(c2.Coord(), 4, nil, 0); !errors.Is(err, noc.ErrAuthFailed) {
		t.Fatalf("cross-secure-domain transfer allowed: %v", err)
	}
}

func TestMultiDomainFunctionalGEMMs(t *testing.T) {
	// Two mutually distrusting secure tasks compute on different cores
	// with real data and cannot read each other's operands.
	n, machine := fourDomainNPU(t)
	sec := machine.SecureContext()
	c0, _ := n.Core(0)
	c1, _ := n.Core(1)
	if err := c0.SetDomain(sec, 1); err != nil {
		t.Fatal(err)
	}
	if err := c1.SetDomain(sec, 2); err != nil {
		t.Fatal(err)
	}
	a := Matrix{Rows: 4, Cols: 4, Data: make([]int8, 16)}
	for i := range a.Data {
		a.Data[i] = int8(i)
	}
	if _, err := c0.FunctionalGEMM(a, a, 0x8000_0000, 0x8000_1000); err != nil {
		t.Fatal(err)
	}
	// Domain-2 probe of domain-1 residue on core 0's scratchpad fails.
	buf := make([]byte, c0.Scratchpad().LineBytes())
	if err := c0.Scratchpad().Read(2, 0, buf); !errors.Is(err, spad.ErrIsolation) {
		t.Fatalf("cross-domain residue read: %v", err)
	}
}
