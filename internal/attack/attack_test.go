package attack

import "testing"

// Every scenario must succeed against the baseline (the vulnerability
// is real) and be blocked by the sNPU mechanism (the defense works).

func TestLeftoverLocals(t *testing.T) {
	base, err := LeftoverLocals(false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("baseline did not leak stale scratchpad data")
	}
	prot, err := LeftoverLocals(true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Blocked || prot.Leaked {
		t.Fatalf("sNPU did not block LeftoverLocals: %+v", prot)
	}
}

func TestSharedSpadSteal(t *testing.T) {
	base, err := SharedSpadSteal(false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("baseline did not leak shared scratchpad data")
	}
	prot, err := SharedSpadSteal(true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Blocked || prot.Leaked {
		t.Fatalf("sNPU did not block shared-spad steal: %+v", prot)
	}
}

func TestNoCHijack(t *testing.T) {
	base, err := NoCHijack(false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("unauthorized NoC did not deliver hijacked payload")
	}
	prot, err := NoCHijack(true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Blocked || prot.Leaked {
		t.Fatalf("peephole did not block hijack: %+v", prot)
	}
}

func TestNoCInject(t *testing.T) {
	base, err := NoCInject(false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("unauthorized NoC did not deliver injected packet")
	}
	prot, err := NoCInject(true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Blocked || prot.Leaked {
		t.Fatalf("peephole did not block injection: %+v", prot)
	}
}

func TestDMAExfiltrate(t *testing.T) {
	base, err := DMAExfiltrate(false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("baseline NPU could not read secure memory (attack setup broken)")
	}
	prot, err := DMAExfiltrate(true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Blocked || prot.Leaked {
		t.Fatalf("Guarder did not block exfiltration: %+v", prot)
	}
}

func TestDriverTamper(t *testing.T) {
	out, err := DriverTamper()
	if err != nil {
		t.Fatal(err)
	}
	if !out.Blocked || out.Leaked {
		t.Fatalf("normal world programmed secure NPU state: %+v", out)
	}
}

func TestRouteIntegrity(t *testing.T) {
	base, err := RouteIntegrity(false)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Leaked {
		t.Fatal("unchecked mis-scheduling was not accepted (attack setup broken)")
	}
	prot, err := RouteIntegrity(true)
	if err != nil {
		t.Fatal(err)
	}
	if !prot.Blocked || prot.Leaked {
		t.Fatalf("route-integrity check did not reject the 1x4 allocation: %+v", prot)
	}
}
