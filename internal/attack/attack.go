// Package attack implements executable versions of the threat-model
// attacks (§I, §III-B) against both the unprotected baseline NPU and
// the sNPU configuration. Each scenario returns what the attacker
// observed: against the baseline it recovers the victim's bytes (the
// vulnerability is real); against sNPU the access is denied.
//
// Scenarios:
//   - LeftoverLocals: a non-secure task reads stale scratchpad lines
//     left by a secure task on the same core (temporal sharing).
//   - SharedSpadSteal: a non-secure core reads a secure line in the
//     shared (global/accumulator) scratchpad (spatial sharing).
//   - NoCHijack: a mis-scheduled attacker core sits where the victim's
//     consumer should be and receives the intermediate results.
//   - NoCInject: an attacker core sends forged packets into a secure
//     core's receive channel.
//   - DMAExfiltrate: an NPU task DMAs out of the platform's secure
//     memory region (compromised-NPU-attacks-CPU).
//   - DriverTamper: untrusted CPU software tries to program the NPU's
//     secure state directly (CPU-attacks-NPU).
package attack

import (
	"bytes"
	"errors"

	"repro/internal/dma"
	"repro/internal/fault"
	"repro/internal/guarder"
	"repro/internal/isolator"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/xlate"
)

// faultPlan, when set, arms every scenario's hardware with a fresh
// fault injector. The fault-safety property test uses it to show that
// no injected fault sequence turns a blocked attack into a leak.
var faultPlan *fault.Plan

// SetFaultPlan arms (nil disarms) all subsequently-run scenarios with
// the plan. Each scenario builds a fresh injector, so one plan replays
// identically across scenarios.
func SetFaultPlan(p *fault.Plan) { faultPlan = p }

// armInjector builds the per-scenario injector (nil when disarmed —
// components treat a nil injector as absent).
func armInjector(stats *sim.Stats) *fault.Injector {
	if faultPlan == nil {
		return nil
	}
	return fault.NewInjector(*faultPlan, stats)
}

// Outcome reports one attack attempt.
type Outcome struct {
	// Leaked is true when the attacker obtained the victim's secret.
	Leaked bool
	// Blocked is true when the hardware denied the access.
	Blocked bool
	// Got is what the attacker read (nil if denied).
	Got []byte
	// Err is the denial error, when blocked.
	Err error
}

var secret = []byte("victim-model-w8s")

// LeftoverLocals runs the stale-scratchpad attack: the victim (secure)
// writes model data into exclusive scratchpad lines and finishes; the
// attacker (non-secure) then reads the same lines without writing
// first — exactly the LeftoverLocals PoC recipe.
func LeftoverLocals(isolated bool) (Outcome, error) {
	stats := sim.NewStats()
	sp, err := spad.New(spad.Config{Lines: 32, LineBytes: 16, Kind: spad.Exclusive, Isolated: isolated, Parity: isolated}, stats)
	if err != nil {
		return Outcome{}, err
	}
	sp.AttachInjector(armInjector(stats))
	if err := sp.Write(spad.SecureDomain, 7, secret); err != nil {
		return Outcome{}, err
	}
	// Victim's task ends. No flush (the baseline relies on none; sNPU
	// needs none). The attacker probes every line it never wrote.
	buf := make([]byte, 16)
	if err := sp.Read(spad.NonSecure, 7, buf); err != nil {
		return Outcome{Blocked: true, Err: err}, nil
	}
	return Outcome{Leaked: bytes.Equal(buf, secret), Got: append([]byte(nil), buf...)}, nil
}

// SharedSpadSteal attacks the spatially shared scratchpad: the victim
// holds lines in the shared accumulator while still running; the
// attacker on another core reads them concurrently.
func SharedSpadSteal(isolated bool) (Outcome, error) {
	stats := sim.NewStats()
	sp, err := spad.New(spad.Config{Lines: 32, LineBytes: 16, Kind: spad.Shared, Isolated: isolated, Parity: isolated}, stats)
	if err != nil {
		return Outcome{}, err
	}
	sp.AttachInjector(armInjector(stats))
	if err := sp.Write(spad.SecureDomain, 3, secret); err != nil {
		return Outcome{}, err
	}
	buf := make([]byte, 16)
	if err := sp.Read(spad.NonSecure, 3, buf); err != nil {
		return Outcome{Blocked: true, Err: err}, nil
	}
	return Outcome{Leaked: bytes.Equal(buf, secret), Got: append([]byte(nil), buf...)}, nil
}

// NoCHijack simulates the Fig. 7 route attack: a compromised scheduler
// places the attacker's (non-secure) core at the coordinate where the
// victim's pipeline sends its intermediate results. With the peephole
// enabled the head-flit authentication fails; without it the attacker
// receives the payload.
func NoCHijack(peephole bool) (Outcome, error) {
	stats := sim.NewStats()
	mesh, err := noc.NewMesh(noc.DefaultConfig(2, 2, peephole), stats)
	if err != nil {
		return Outcome{}, err
	}
	mesh.AttachInjector(armInjector(stats))
	ids := map[noc.Coord]spad.DomainID{
		{X: 0, Y: 0}: spad.SecureDomain, // victim producer
		{X: 1, Y: 0}: spad.NonSecure,    // attacker squatting on the consumer slot
	}
	mesh.IDSource = func(c noc.Coord) spad.DomainID { return ids[c] }
	pkt := noc.Packet{
		Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 1, Y: 0},
		SrcID: spad.SecureDomain, Flits: 1, Payload: secret,
	}
	if _, err := mesh.Send(pkt, 0); err != nil {
		if errors.Is(err, noc.ErrAuthFailed) {
			return Outcome{Blocked: true, Err: err}, nil
		}
		return Outcome{}, err
	}
	got := mesh.Receive(noc.Coord{X: 1, Y: 0})
	if len(got) == 1 && bytes.Equal(got[0].Payload, secret) {
		return Outcome{Leaked: true, Got: got[0].Payload}, nil
	}
	return Outcome{}, nil
}

// NoCInject is the reverse direction: a non-secure core pushes forged
// packets (poisoned activations) into a secure core.
func NoCInject(peephole bool) (Outcome, error) {
	stats := sim.NewStats()
	mesh, err := noc.NewMesh(noc.DefaultConfig(2, 2, peephole), stats)
	if err != nil {
		return Outcome{}, err
	}
	mesh.AttachInjector(armInjector(stats))
	ids := map[noc.Coord]spad.DomainID{
		{X: 0, Y: 0}: spad.NonSecure,    // attacker
		{X: 1, Y: 1}: spad.SecureDomain, // victim consumer
	}
	mesh.IDSource = func(c noc.Coord) spad.DomainID { return ids[c] }
	pkt := noc.Packet{
		Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 1, Y: 1},
		SrcID: spad.NonSecure, Flits: 1, Payload: []byte("poisoned-tensor!"),
	}
	if _, err := mesh.Send(pkt, 0); err != nil {
		if errors.Is(err, noc.ErrAuthFailed) {
			return Outcome{Blocked: true, Err: err}, nil
		}
		return Outcome{}, err
	}
	got := mesh.Receive(noc.Coord{X: 1, Y: 1})
	return Outcome{Leaked: len(got) == 1, Got: payloadOf(got)}, nil
}

func payloadOf(pkts []noc.Packet) []byte {
	if len(pkts) == 0 {
		return nil
	}
	return pkts[0].Payload
}

// DMAExfiltrate mounts the compromised-NPU attack on CPU-side secure
// memory: a non-secure NPU task issues a DMA read against the secure
// region. protect=false runs the unprotected baseline (identity
// translation, no checking); protect=true runs behind the Guarder.
func DMAExfiltrate(protect bool) (Outcome, error) {
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	if err := phys.AddRegion(mem.Region{Name: "secure", Base: 0x9000_0000, Size: 1 << 20, Owner: mem.Secure}); err != nil {
		return Outcome{}, err
	}
	machine := tee.NewMachine(phys)
	// The CPU-side TEE placed facial-feature data in secure memory.
	phys.Write(0x9000_0040, secret)

	sp, err := spad.New(spad.Config{Lines: 16, LineBytes: 16, Kind: spad.Exclusive, Isolated: protect, Parity: protect}, stats)
	if err != nil {
		return Outcome{}, err
	}
	sp.AttachInjector(armInjector(stats))
	var xl xlate.Translator
	if protect {
		g := guarder.NewDefault(stats)
		sec := machine.SecureContext()
		// Platform policy: the normal world gets only the NPU-reserved
		// window. A translation register pointing into secure memory
		// exists (the driver is compromised and programmed it via a
		// confused monitor request — worst case), but no checking
		// register grants the normal world access there.
		if err := g.SetTransReg(sec, 0, guarder.TransReg{VBase: 0x5000, PBase: 0x9000_0000, Size: 0x1000, Valid: true}); err != nil {
			return Outcome{}, err
		}
		if err := g.SetCheckReg(sec, 0, guarder.CheckReg{Base: 0x8800_0000, Size: 1 << 20, Perm: mem.PermRW, World: mem.Normal, Valid: true}); err != nil {
			return Outcome{}, err
		}
		xl = g
	} else {
		xl = xlate.NewIdentity(stats)
	}
	eng := dma.New(dma.DefaultConfig(), xl, sim.NewResource("dram"), phys, stats)
	eng.AttachInjector(armInjector(stats))
	if protect {
		phys.EnableECC(stats)
	}
	va := mem.VirtAddr(0x5000 + 0x40)
	if !protect {
		va = 0x9000_0040
	}
	_, err = eng.Do(dma.Request{VA: va, Bytes: 16, Dir: dma.ToScratchpad, SpadLine: 0, World: mem.Normal, Functional: true},
		sp, spad.NonSecure, 0)
	if err != nil {
		return Outcome{Blocked: true, Err: err}, nil
	}
	buf := make([]byte, 16)
	if err := sp.Read(spad.NonSecure, 0, buf); err != nil {
		return Outcome{Blocked: true, Err: err}, nil
	}
	return Outcome{Leaked: bytes.Equal(buf, secret), Got: append([]byte(nil), buf...)}, nil
}

// RouteIntegrity mounts the paper's mis-scheduling attack (§IV-B,
// Fig. 7): a secure task expects a 2x2 core block, and the malicious
// scheduler supplies a 1x4 row so one endpoint of the task's NoC route
// is a core it controls. With the route-integrity check (sNPU's secure
// loader) the allocation is rejected before any flit moves; without it
// the attacker-reachable mapping is accepted.
func RouteIntegrity(verify bool) (Outcome, error) {
	expected := isolator.Topology{W: 2, H: 2}
	// Cores 0..3 of a 5-wide mesh: a 1x4 row — wrong shape, right count.
	scheduled := []noc.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	if !verify {
		// No check: the task is loaded onto the attacker's arrangement.
		return Outcome{Leaked: true}, nil
	}
	if err := isolator.VerifyRoute(expected, scheduled); err != nil {
		return Outcome{Blocked: true, Err: err}, nil
	}
	return Outcome{Leaked: true}, nil
}

// DriverTamper mounts the CPU-side attack on NPU state: the untrusted
// driver (normal world) tries to flip a core's ID state and rewrite
// the Guarder's checking registers. Under sNPU both are secure
// instructions; the baseline comparison is the TrustZone-NPU design
// where such state simply does not exist to protect (represented here
// by programming succeeding when no privilege gate is enforced).
func DriverTamper() (Outcome, error) {
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	machine := tee.NewMachine(phys)
	g := guarder.NewDefault(stats)
	norm := machine.NormalContext()
	err1 := g.SetCheckReg(norm, 0, guarder.CheckReg{Base: 0x9000_0000, Size: 1 << 20, Perm: mem.PermRW, World: mem.Normal, Valid: true})
	err2 := g.SetTransReg(norm, 0, guarder.TransReg{VBase: 0, PBase: 0x9000_0000, Size: 1 << 20, Valid: true})
	if errors.Is(err1, tee.ErrPrivilege) && errors.Is(err2, tee.ErrPrivilege) {
		return Outcome{Blocked: true, Err: err1}, nil
	}
	return Outcome{Leaked: true}, nil
}
