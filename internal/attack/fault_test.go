package attack

import (
	"testing"

	"repro/internal/fault"
)

// The fault-safety invariant: no injected fault sequence may turn a
// blocked attack into a leak. Every scenario is replayed against the
// protected configuration under dense seeded fault plans; an error is
// as good as a block (fail closed), but Leaked must never be true.
func TestNoFaultSequenceBreaksIsolation(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(bool) (Outcome, error)
	}{
		{"LeftoverLocals", LeftoverLocals},
		{"SharedSpadSteal", SharedSpadSteal},
		{"NoCHijack", NoCHijack},
		{"NoCInject", NoCInject},
		{"DMAExfiltrate", DMAExfiltrate},
		{"RouteIntegrity", RouteIntegrity},
	}
	defer SetFaultPlan(nil)

	for seed := int64(1); seed <= 32; seed++ {
		plan := fault.Generate(seed, 10_000, fault.UniformRates(20_000))
		// Attack hardware acts within a handful of cycles, so make the
		// whole schedule due immediately — the most adversarial timing.
		for i := range plan.Events {
			plan.Events[i].At = 0
		}
		SetFaultPlan(&plan)
		for _, s := range scenarios {
			out, err := s.run(true)
			if err != nil {
				// The scenario machinery itself failed closed (dropped
				// packet, dead link, stalled DMA): no leak, move on.
				continue
			}
			if out.Leaked {
				t.Fatalf("seed %d: %s leaked under faults (%d events)", seed, s.name, len(plan.Events))
			}
		}
	}

	// DriverTamper has no protected/baseline switch; replay it too.
	for seed := int64(1); seed <= 4; seed++ {
		plan := fault.Generate(seed, 1_000, fault.UniformRates(20_000))
		SetFaultPlan(&plan)
		out, err := DriverTamper()
		if err == nil && out.Leaked {
			t.Fatalf("seed %d: DriverTamper leaked under faults", seed)
		}
	}
}

// The baseline attacks must still demonstrate their leaks with the
// plan disarmed — guard against SetFaultPlan leaking across tests.
func TestFaultPlanDisarmRestoresBaseline(t *testing.T) {
	SetFaultPlan(nil)
	out, err := LeftoverLocals(false)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Leaked {
		t.Fatal("baseline attack no longer leaks after disarm")
	}
}
