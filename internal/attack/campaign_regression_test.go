package attack

// Regression suite for scenarios minimized out of the coverage-guided
// security campaign (internal/campaign). Each entry is a named,
// table-driven replay of a schedule that once found — or minimally
// reproduces — a real bug in this repo's history; the campaign engine
// re-executes it with the full §IV-B invariant set armed (planted
// LeftoverLocals secret probed at every switch, opaque aborts,
// attestation, causality, deadline cuts). A failure here means a
// historical bug class has reopened.
//
// New crashers found by `go test -fuzz=FuzzCampaign` should be
// minimized into a campaign.Scenario constructor and added to this
// table (and to the seed corpus) rather than committed as raw fuzz
// inputs.

import (
	"strings"
	"testing"

	"repro/internal/campaign"
)

func TestCampaignRegressions(t *testing.T) {
	cases := []struct {
		name     string
		scenario campaign.Scenario
		// check inspects the clean-run outcome to prove the schedule
		// still walks the code path it was minimized from.
		check func(t *testing.T, out *campaign.Outcome)
	}{
		{
			// PR-4 history: the scheduler admitted and dispatched a
			// request 30M cycles before its arrival. The campaign's
			// causality invariant is the detector; this check pins the
			// schedule shape (the future request really is future).
			name:     "admit-early",
			scenario: campaign.AdmitEarlyScenario(),
			check: func(t *testing.T, out *campaign.Outcome) {
				r := out.Report.ResultByID(2)
				if r == nil || !r.Completed {
					t.Fatalf("future request did not complete: %+v", r)
				}
				for _, d := range out.Report.Decisions {
					if d.Req == 2 && d.Cycle < 30_000_000 {
						t.Fatalf("decision %q for req 2 at cycle %d, before its arrival", d.Event, d.Cycle)
					}
				}
			},
		},
		{
			// Deadline one cycle short of the measured solo compute
			// floor: passes admission, must be cut at a tile boundary
			// with the secure flush paid before the core is reused.
			name:     "deadline-cut",
			scenario: campaign.DeadlineCutScenario(),
			check: func(t *testing.T, out *campaign.Outcome) {
				if r := out.Report.ResultByID(1); r == nil || !r.Dropped {
					t.Fatalf("deadline-cut request did not drop: %+v", r)
				}
				if !strings.Contains(out.Report.DecisionLog(), "deadline_miss") {
					t.Fatal("no deadline_miss decision recorded")
				}
				if out.Report.FlushCycles == 0 {
					t.Fatal("secure deadline cut paid no flush")
				}
			},
		},
		{
			// Hostile post-run trampoline traffic: stale task ids,
			// garbage images, and a translation window aimed at secure
			// DRAM. The run is clean only if every hostile call was
			// refused without leaking the planted secret.
			name:     "hostile-monitor",
			scenario: campaign.HostileMonitorScenario(),
			check: func(t *testing.T, out *campaign.Outcome) {
				if out.Bitmap == 0 {
					t.Fatal("hostile monitor leg left no transition coverage")
				}
			},
		},
		{
			// Minimized fuzz crasher: an admission-rejected request
			// (deadline below the compute floor) must terminate as
			// Rejected — exactly one terminal state, no partial run.
			name:     "serve-rejected",
			scenario: campaign.ServeRejectedScenario(),
			check: func(t *testing.T, out *campaign.Outcome) {
				r := out.Report.ResultByID(1)
				if r == nil || !r.Rejected {
					t.Fatalf("infeasible request was not rejected at admission: %+v", r)
				}
				if r.Completed || r.Aborted || r.Dropped || r.Shed {
					t.Fatalf("rejected request reached a second terminal state: %+v", r)
				}
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			out, err := campaign.Execute(tc.scenario)
			if err != nil {
				t.Fatalf("campaign invariants violated: %v", err)
			}
			tc.check(t, out)
		})
	}
}
