// Package cache models the SoC's shared L2 (§VI Table II: 2 MB, 8
// banks):
// a physically indexed, set-associative, banked cache sitting between
// the NPU's DMA engines and the DRAM channel. NPU streams mostly blow
// through it, but reused tiles (the A-tile reload traffic the tiler
// creates) can hit, which is what the L2 ablation bench measures.
//
// The model is timing-first: Access classifies each line of a request
// as hit or miss, charges bank occupancy for hits, and leaves the
// misses for the caller to serialize on the DRAM channel.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Config sizes the L2.
type Config struct {
	// SizeBytes is the total capacity (2 MB in Table II).
	SizeBytes int
	// LineBytes is the cache line size.
	LineBytes int
	// Ways is the set associativity.
	Ways int
	// Banks is the number of independently accessible banks (8).
	Banks int
	// HitLatency is the load-to-use latency of a hit.
	HitLatency sim.Cycle
	// BankBytesPerCycle is each bank's hit bandwidth.
	BankBytesPerCycle int
}

// DefaultConfig mirrors Table II.
func DefaultConfig() Config {
	return Config{
		SizeBytes:         2 << 20,
		LineBytes:         64,
		Ways:              8,
		Banks:             8,
		HitLatency:        20,
		BankBytesPerCycle: 32,
	}
}

// Validate rejects unusable geometries.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 || c.Banks <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%(c.Ways*c.Banks) != 0 {
		return fmt.Errorf("cache: %d lines not divisible into %d ways x %d banks",
			lines, c.Ways, c.Banks)
	}
	if c.BankBytesPerCycle <= 0 {
		return fmt.Errorf("cache: zero bank bandwidth")
	}
	return nil
}

type way struct {
	tag    uint64
	valid  bool
	lastAt uint64
}

// L2 is the cache state plus per-bank timing resources.
type L2 struct {
	cfg   Config
	sets  int     // per bank
	ways  [][]way // [bank*sets + set][way]
	banks []*sim.Resource
	tick  uint64

	Hits   uint64
	Misses uint64
}

// New builds an empty L2.
func New(cfg Config) (*L2, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	setsTotal := lines / cfg.Ways
	setsPerBank := setsTotal / cfg.Banks
	l := &L2{cfg: cfg, sets: setsPerBank}
	l.ways = make([][]way, setsTotal)
	for i := range l.ways {
		l.ways[i] = make([]way, cfg.Ways)
	}
	for b := 0; b < cfg.Banks; b++ {
		l.banks = append(l.banks, sim.NewResource(fmt.Sprintf("l2-bank%d", b)))
	}
	return l, nil
}

// Config returns the cache geometry.
func (l *L2) Config() Config { return l.cfg }

// indexOf maps a line address to (bank, set index within the flat
// ways array).
func (l *L2) indexOf(lineAddr uint64) (bank int, flatSet int) {
	bank = int(lineAddr % uint64(l.cfg.Banks))
	set := int((lineAddr / uint64(l.cfg.Banks)) % uint64(l.sets))
	return bank, bank*l.sets + set
}

// lookupLine probes and fills one line; reports hit.
func (l *L2) lookupLine(lineAddr uint64) bool {
	l.tick++
	_, fs := l.indexOf(lineAddr)
	set := l.ways[fs]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			set[i].lastAt = l.tick
			l.Hits++
			return true
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastAt < set[victim].lastAt {
			victim = i
		}
	}
	l.Misses++
	set[victim] = way{tag: lineAddr, valid: true, lastAt: l.tick}
	return false
}

// AccessResult classifies one request.
type AccessResult struct {
	HitBytes  uint64
	MissBytes uint64
	// HitDone is when the hit portion has been served by the banks.
	HitDone sim.Cycle
}

// Access probes every line of [pa, pa+bytes) at cycle `at`: hits are
// served from the banks (claiming bank bandwidth), misses are filled
// (so a re-access hits) and returned for the caller to fetch from
// DRAM. Writes allocate like reads (the NPU's mvout stream is
// write-allocated into L2 in this model).
func (l *L2) Access(pa mem.PhysAddr, bytes uint64, at sim.Cycle) AccessResult {
	if bytes == 0 {
		return AccessResult{HitDone: at}
	}
	lb := uint64(l.cfg.LineBytes)
	first := uint64(pa) / lb
	last := (uint64(pa) + bytes - 1) / lb
	res := AccessResult{HitDone: at}
	for line := first; line <= last; line++ {
		span := lb
		if line == first {
			span -= uint64(pa) % lb
		}
		if line == last {
			end := (uint64(pa) + bytes) % lb
			if end != 0 {
				span -= lb - end
			}
		}
		if l.lookupLine(line) {
			res.HitBytes += span
			bank, _ := l.indexOf(line)
			dur := sim.Cycle((span + uint64(l.cfg.BankBytesPerCycle) - 1) / uint64(l.cfg.BankBytesPerCycle))
			start := l.banks[bank].Claim(at, dur)
			if done := start + dur + l.cfg.HitLatency; done > res.HitDone {
				res.HitDone = done
			}
		} else {
			res.MissBytes += span
		}
	}
	return res
}

// HitRate reports hits/(hits+misses).
func (l *L2) HitRate() float64 {
	total := l.Hits + l.Misses
	if total == 0 {
		return 0
	}
	return float64(l.Hits) / float64(total)
}

// Reset invalidates the cache and idles the banks.
func (l *L2) Reset() {
	for i := range l.ways {
		for j := range l.ways[i] {
			l.ways[i][j] = way{}
		}
	}
	for _, b := range l.banks {
		b.Reset()
	}
	l.Hits = 0
	l.Misses = 0
}
