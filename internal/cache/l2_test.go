package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newL2(t *testing.T) *L2 {
	t.Helper()
	l, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := DefaultConfig()
	bad.Ways = 7 // 32768 lines not divisible by 7*8
	if _, err := New(bad); err == nil {
		t.Fatal("indivisible geometry accepted")
	}
	bad = DefaultConfig()
	bad.BankBytesPerCycle = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	l := newL2(t)
	r1 := l.Access(0x8000_0000, 64, 0)
	if r1.MissBytes != 64 || r1.HitBytes != 0 {
		t.Fatalf("cold access: %+v", r1)
	}
	r2 := l.Access(0x8000_0000, 64, 100)
	if r2.HitBytes != 64 || r2.MissBytes != 0 {
		t.Fatalf("warm access: %+v", r2)
	}
	if r2.HitDone <= 100 {
		t.Fatal("hit served in zero time")
	}
	if l.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", l.HitRate())
	}
}

func TestPartialLineAccounting(t *testing.T) {
	l := newL2(t)
	// 100 bytes starting mid-line spans lines but byte counts must sum.
	r := l.Access(0x8000_0020, 100, 0)
	if r.HitBytes+r.MissBytes != 100 {
		t.Fatalf("bytes don't sum: %+v", r)
	}
	r = l.Access(0x8000_0020, 100, 0)
	if r.HitBytes != 100 {
		t.Fatalf("warm partial access missed: %+v", r)
	}
}

func TestZeroByteAccess(t *testing.T) {
	l := newL2(t)
	r := l.Access(0x8000_0000, 0, 42)
	if r.HitBytes != 0 || r.MissBytes != 0 || r.HitDone != 42 {
		t.Fatalf("zero-byte access: %+v", r)
	}
}

func TestCapacityEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SizeBytes = 64 * 1024 // small L2 to force eviction
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 4x the capacity, then re-stream: everything evicted.
	span := uint64(4 * cfg.SizeBytes)
	l.Access(0x8000_0000, span, 0)
	h0 := l.Hits
	l.Access(0x8000_0000, uint64(cfg.LineBytes), 0)
	// The first line was evicted long ago.
	if l.Hits != h0 {
		t.Fatal("evicted line hit")
	}
}

func TestLRUWithinSet(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SizeBytes = 8 * 1024
	cfg.Ways = 2
	cfg.Banks = 1
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sets := (cfg.SizeBytes / cfg.LineBytes) / cfg.Ways
	stride := uint64(sets * cfg.LineBytes) // same set, different tags
	a, b, c := mem.PhysAddr(0), mem.PhysAddr(stride), mem.PhysAddr(2*stride)
	l.Access(a, 64, 0)
	l.Access(b, 64, 0)
	l.Access(a, 64, 0) // a is MRU
	l.Access(c, 64, 0) // evicts b
	if r := l.Access(a, 64, 0); r.HitBytes != 64 {
		t.Fatal("MRU way evicted")
	}
	if r := l.Access(b, 64, 0); r.HitBytes != 0 {
		t.Fatal("LRU way survived")
	}
}

func TestBankContention(t *testing.T) {
	l := newL2(t)
	// Warm one line, then hammer it: bank occupancy serializes.
	l.Access(0x8000_0000, 64, 0)
	d1 := l.Access(0x8000_0000, 64, 1000).HitDone
	d2 := l.Access(0x8000_0000, 64, 1000).HitDone
	if d2 <= d1 {
		t.Fatalf("no bank serialization: %d then %d", d1, d2)
	}
}

func TestReset(t *testing.T) {
	l := newL2(t)
	l.Access(0x8000_0000, 4096, 0)
	l.Reset()
	if l.Hits != 0 || l.Misses != 0 {
		t.Fatal("counters survived reset")
	}
	if r := l.Access(0x8000_0000, 64, 0); r.HitBytes != 0 {
		t.Fatal("contents survived reset")
	}
}

// Property: hit+miss bytes always equal the request size, and a
// repeated access within capacity is always a full hit.
func TestAccessAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := New(DefaultConfig())
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			pa := mem.PhysAddr(0x8000_0000 + rng.Intn(1<<20))
			bytes := uint64(rng.Intn(8192) + 1)
			r := l.Access(pa, bytes, 0)
			if r.HitBytes+r.MissBytes != bytes {
				return false
			}
			r2 := l.Access(pa, bytes, 0)
			if r2.HitBytes != bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
