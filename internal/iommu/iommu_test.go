package iommu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/xlate"
)

func TestPageTableMapWalk(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x1000, 0x8000_1000, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	pte, accesses, err := pt.Walk(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if accesses != 3 {
		t.Fatalf("walk accesses = %d, want 3 (levels)", accesses)
	}
	if pte.PPN != 0x8000_1000/mem.PageSize {
		t.Fatalf("ppn = %#x", pte.PPN)
	}
	if _, _, err := pt.Walk(0x2000); err == nil {
		t.Fatal("walk of unmapped va succeeded")
	}
}

func TestPageTableUnalignedRejected(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x1001, 0x8000_0000, mem.PermRead, false); err == nil {
		t.Fatal("unaligned va accepted")
	}
	if err := pt.Map(0x1000, 0x8000_0001, mem.PermRead, false); err == nil {
		t.Fatal("unaligned pa accepted")
	}
}

func TestPageTableMapRangeAndUnmap(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapRange(0x10000, 0x8000_0000, 3*mem.PageSize+100, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if pt.MappedPages() != 4 {
		t.Fatalf("mapped pages = %d, want 4", pt.MappedPages())
	}
	for i := 0; i < 4; i++ {
		pte, _, err := pt.Walk(mem.VirtAddr(0x10000 + i*mem.PageSize))
		if err != nil {
			t.Fatalf("page %d: %v", i, err)
		}
		want := uint64(0x8000_0000+i*mem.PageSize) / mem.PageSize
		if pte.PPN != want {
			t.Fatalf("page %d ppn = %#x, want %#x", i, pte.PPN, want)
		}
	}
	pt.Unmap(0x10000)
	if pt.MappedPages() != 3 {
		t.Fatalf("mapped pages after unmap = %d", pt.MappedPages())
	}
	pt.Unmap(0x10000) // idempotent
	if pt.MappedPages() != 3 {
		t.Fatal("double unmap changed count")
	}
}

func TestIOTLBHitMiss(t *testing.T) {
	tlb := NewIOTLB(2)
	if _, hit := tlb.Lookup(0, 0x1000); hit {
		t.Fatal("empty TLB hit")
	}
	tlb.Insert(0, 0x1000, PTE{PPN: 1, Valid: true})
	if pte, hit := tlb.Lookup(0, 0x1234); !hit || pte.PPN != 1 {
		t.Fatal("same-page lookup missed")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 || tlb.Lookups != 2 {
		t.Fatalf("counters hits=%d misses=%d lookups=%d", tlb.Hits, tlb.Misses, tlb.Lookups)
	}
}

func TestIOTLBLRUEviction(t *testing.T) {
	tlb := NewIOTLB(2)
	tlb.Insert(0, 0x1000, PTE{PPN: 1, Valid: true})
	tlb.Insert(0, 0x2000, PTE{PPN: 2, Valid: true})
	tlb.Lookup(0, 0x1000)                           // touch page 1: page 2 is now LRU
	tlb.Insert(0, 0x3000, PTE{PPN: 3, Valid: true}) // evicts page 2
	if _, hit := tlb.Lookup(0, 0x1000); !hit {
		t.Fatal("MRU entry evicted")
	}
	if _, hit := tlb.Lookup(0, 0x2000); hit {
		t.Fatal("LRU entry survived")
	}
	if _, hit := tlb.Lookup(0, 0x3000); !hit {
		t.Fatal("new entry missing")
	}
}

func TestIOTLBFlush(t *testing.T) {
	tlb := NewIOTLB(4)
	tlb.Insert(0, 0x1000, PTE{PPN: 1, Valid: true})
	tlb.FlushAll()
	if tlb.Valid() != 0 {
		t.Fatal("flush left valid entries")
	}
	if tlb.Flushes != 1 {
		t.Fatal("flush not counted")
	}
}

func TestIOTLBInsertRefreshesDuplicate(t *testing.T) {
	tlb := NewIOTLB(2)
	tlb.Insert(0, 0x1000, PTE{PPN: 1, Valid: true})
	tlb.Insert(0, 0x1000, PTE{PPN: 9, Valid: true})
	if tlb.Valid() != 1 {
		t.Fatalf("duplicate insert grew TLB: valid=%d", tlb.Valid())
	}
	if pte, _ := tlb.Lookup(0, 0x1000); pte.PPN != 9 {
		t.Fatal("duplicate insert did not refresh PTE")
	}
}

// Property: the fixed-capacity IOTLB behaves like a reference LRU map.
func TestIOTLBMatchesReferenceLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ways = 4
		tlb := NewIOTLB(ways)
		type refEntry struct {
			ppn  uint64
			last int
		}
		ref := map[uint64]*refEntry{}
		tick := 0
		for i := 0; i < 300; i++ {
			vpn := uint64(rng.Intn(12))
			va := mem.VirtAddr(vpn * mem.PageSize)
			tick++
			pte, hit := tlb.Lookup(0, va)
			re, refHit := ref[vpn]
			if hit != refHit {
				return false
			}
			if hit {
				if pte.PPN != re.ppn {
					return false
				}
				re.last = tick
				continue
			}
			tick++
			newPPN := uint64(rng.Intn(1 << 20))
			tlb.Insert(0, va, PTE{PPN: newPPN, Valid: true})
			if len(ref) == ways {
				var victim uint64
				minLast := int(^uint(0) >> 1)
				for k, v := range ref {
					if v.last < minLast {
						minLast = v.last
						victim = k
					}
				}
				delete(ref, victim)
			}
			ref[vpn] = &refEntry{ppn: newPPN, last: tick}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newIOMMU(t *testing.T, entries int) (*IOMMU, *sim.Stats) {
	t.Helper()
	stats := sim.NewStats()
	u := New(DefaultConfig(entries), stats)
	if err := u.Table().MapRange(0x10000, 0x8001_0000, 64*mem.PageSize, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := u.Table().MapRange(0x9000_0000, 0x9000_0000, 16*mem.PageSize, mem.PermRW, true); err != nil {
		t.Fatal(err)
	}
	return u, stats
}

func TestIOMMUTranslateBasic(t *testing.T) {
	u, _ := newIOMMU(t, 8)
	res, err := u.Translate(xlate.Request{VA: 0x10040, Bytes: 128, Need: mem.PermRead, World: mem.Normal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA != 0x8001_0040 {
		t.Fatalf("pa = %#x", uint64(res.PA))
	}
	if res.Stall == 0 {
		t.Fatal("first touch should pay a walk stall")
	}
	// Second access to the same page hits the TLB: no stall.
	res2, err := u.Translate(xlate.Request{VA: 0x10000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stall != 0 {
		t.Fatalf("TLB hit stalled %d cycles", res2.Stall)
	}
}

func TestIOMMUPermissionAndWorldChecks(t *testing.T) {
	u, _ := newIOMMU(t, 8)
	if _, err := u.Translate(xlate.Request{VA: 0x10000, Bytes: 64, Need: mem.PermWrite, World: mem.Normal}, 0); err != nil {
		t.Fatalf("rw mapping denied write: %v", err)
	}
	// Unmapped VA faults.
	if _, err := u.Translate(xlate.Request{VA: 0xdead_0000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0); err == nil {
		t.Fatal("unmapped va translated")
	}
	// Normal world cannot use a secure (S-bit) mapping.
	if _, err := u.Translate(xlate.Request{VA: 0x9000_0000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}, 0); err == nil {
		t.Fatal("normal world used secure mapping")
	}
	// Secure world can.
	if _, err := u.Translate(xlate.Request{VA: 0x9000_0000, Bytes: 64, Need: mem.PermRead, World: mem.Secure}, 0); err != nil {
		t.Fatalf("secure world denied its own mapping: %v", err)
	}
	// Empty requests are rejected.
	if _, err := u.Translate(xlate.Request{VA: 0x10000, Bytes: 0, Need: mem.PermRead, World: mem.Normal}, 0); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestIOMMUReadOnlyMapping(t *testing.T) {
	stats := sim.NewStats()
	u := New(DefaultConfig(8), stats)
	if err := u.Table().Map(0x5000, 0x8000_5000, mem.PermRead, false); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(xlate.Request{VA: 0x5000, Bytes: 64, Need: mem.PermWrite, World: mem.Normal}, 0); err == nil {
		t.Fatal("write through read-only mapping allowed")
	}
}

func TestIOMMUContiguityGuard(t *testing.T) {
	stats := sim.NewStats()
	u := New(DefaultConfig(8), stats)
	// Two adjacent VAs mapping to non-adjacent PAs.
	if err := u.Table().Map(0x1000, 0x8000_0000, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if err := u.Table().Map(0x2000, 0x8010_0000, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(xlate.Request{VA: 0x1800, Bytes: mem.PageSize, Need: mem.PermRead, World: mem.Normal}, 0); err == nil {
		t.Fatal("physically discontiguous request accepted")
	}
}

func TestIOMMUPacketCounting(t *testing.T) {
	u, stats := newIOMMU(t, 8)
	// 4KB request = 64 packets -> 64 IOTLB lookups (energy model).
	if _, err := u.Translate(xlate.Request{VA: 0x10000, Bytes: 4096, Need: mem.PermRead, World: mem.Normal}, 0); err != nil {
		t.Fatal(err)
	}
	if got := stats.Get(sim.CtrIOTLBLookups); got != 64 {
		t.Fatalf("iotlb lookups = %d, want 64", got)
	}
	if got := stats.Get(sim.CtrTranslations); got != 64 {
		t.Fatalf("translations = %d, want 64", got)
	}
}

func TestIOMMUContextSwitchFlushes(t *testing.T) {
	u, stats := newIOMMU(t, 8)
	req := xlate.Request{VA: 0x10000, Bytes: 64, Need: mem.PermRead, World: mem.Normal, TaskID: 1}
	if _, err := u.Translate(req, 0); err != nil {
		t.Fatal(err)
	}
	u.OnContextSwitch(1) // same task: no flush
	if stats.Get(sim.CtrIOTLBFlushes) != 0 {
		t.Fatal("same-task switch flushed")
	}
	u.OnContextSwitch(2)
	if stats.Get(sim.CtrIOTLBFlushes) != 1 {
		t.Fatal("task switch did not flush")
	}
	// After the flush the same page pays a walk again (ping-pong).
	res, err := u.Translate(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stall == 0 {
		t.Fatal("post-flush access did not re-walk")
	}
}

func TestIOMMUThrashingSmallTLB(t *testing.T) {
	// Touch more pages than the TLB holds, twice; a 4-entry TLB walks
	// every time, a 32-entry TLB hits on the second pass.
	run := func(entries int) sim.Cycle {
		u, _ := newIOMMU(t, entries)
		var stall sim.Cycle
		for pass := 0; pass < 2; pass++ {
			for p := 0; p < 16; p++ {
				res, err := u.Translate(xlate.Request{
					VA: mem.VirtAddr(0x10000 + p*mem.PageSize), Bytes: 64,
					Need: mem.PermRead, World: mem.Normal}, 0)
				if err != nil {
					t.Fatal(err)
				}
				stall += res.Stall
			}
		}
		return stall
	}
	small, big := run(4), run(32)
	if small <= big {
		t.Fatalf("4-entry TLB stall (%d) not worse than 32-entry (%d)", small, big)
	}
}
