// Package iommu models the "TrustZone NPU" baseline access controller
// the paper compares against (§II, §VI-B):
// a three-level IO page table held in DRAM, an IOTLB with a
// configurable number of entries and LRU replacement, a hardware page
// walker whose memory accesses stall the DMA pipeline, and the
// TrustZone extension (an S/NS bit per PTE) that industry sMMUs use to
// mark the NPU's secure mappings.
//
// The performance pathologies the paper measures against — IOTLB
// misses, page-walk stalls, and flush-induced ping-pong on task
// switches — all come out of this model.
package iommu

import (
	"fmt"

	"repro/internal/mem"
)

// levels and bits of the Sv39-like IO page table: 9 bits per level over
// 4KB pages.
const (
	ptLevels    = 3
	ptIndexBits = 9
	ptEntries   = 1 << ptIndexBits
)

// PTE is one IO page-table entry.
type PTE struct {
	PPN    uint64 // physical page number
	Perm   mem.Perm
	Secure bool // TrustZone NS/S bit: set for secure-world mappings
	Valid  bool
}

// PageTable is a software-walked three-level IO page table. Real
// walkers read PTEs from DRAM; we keep the structure in Go maps and
// charge the walk cost in cycles, which is what the timing model
// needs. MappedPages and Walks are exposed for tests and for the
// hardware-cost model.
type PageTable struct {
	root  *ptNode
	pages int
}

type ptNode struct {
	children [ptEntries]*ptNode // interior levels
	ptes     [ptEntries]PTE     // leaf level only
	leaf     bool
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{root: &ptNode{}}
}

func vpnIndex(va mem.VirtAddr, level int) int {
	// level 0 is the root; shift decreases toward the leaf.
	shift := 12 + ptIndexBits*(ptLevels-1-level)
	return int(uint64(va)>>shift) & (ptEntries - 1)
}

// Map installs a 4KB mapping va -> pa. Both addresses must be
// page-aligned.
func (t *PageTable) Map(va mem.VirtAddr, pa mem.PhysAddr, perm mem.Perm, secure bool) error {
	if uint64(va)%mem.PageSize != 0 || uint64(pa)%mem.PageSize != 0 {
		return fmt.Errorf("iommu: unaligned mapping %#x -> %#x", uint64(va), uint64(pa))
	}
	n := t.root
	for level := 0; level < ptLevels-1; level++ {
		idx := vpnIndex(va, level)
		if n.children[idx] == nil {
			n.children[idx] = &ptNode{leaf: level == ptLevels-2}
		}
		n = n.children[idx]
	}
	idx := vpnIndex(va, ptLevels-1)
	if !n.ptes[idx].Valid {
		t.pages++
	}
	n.ptes[idx] = PTE{PPN: uint64(pa) / mem.PageSize, Perm: perm, Secure: secure, Valid: true}
	return nil
}

// MapRange maps size bytes of contiguous VA onto contiguous PA.
func (t *PageTable) MapRange(va mem.VirtAddr, pa mem.PhysAddr, size uint64, perm mem.Perm, secure bool) error {
	end := mem.PageAlignUp(mem.PhysAddr(uint64(va) + size))
	for cur := mem.PhysAddr(mem.PageAlignDown(mem.PhysAddr(va))); cur < end; cur += mem.PageSize {
		off := uint64(cur) - uint64(mem.PageAlignDown(mem.PhysAddr(va)))
		if err := t.Map(mem.VirtAddr(cur), mem.PageAlignDown(pa)+mem.PhysAddr(off), perm, secure); err != nil {
			return err
		}
	}
	return nil
}

// Unmap removes a 4KB mapping if present.
func (t *PageTable) Unmap(va mem.VirtAddr) {
	n := t.root
	for level := 0; level < ptLevels-1; level++ {
		n = n.children[vpnIndex(va, level)]
		if n == nil {
			return
		}
	}
	idx := vpnIndex(va, ptLevels-1)
	if n.ptes[idx].Valid {
		t.pages--
		n.ptes[idx] = PTE{}
	}
}

// Walk resolves va to its PTE, reporting how many memory accesses the
// hardware walker performed (one per level it had to traverse).
func (t *PageTable) Walk(va mem.VirtAddr) (PTE, int, error) {
	n := t.root
	accesses := 0
	for level := 0; level < ptLevels-1; level++ {
		accesses++
		n = n.children[vpnIndex(va, level)]
		if n == nil {
			return PTE{}, accesses, fmt.Errorf("iommu: fault at level %d for va %#x", level, uint64(va))
		}
	}
	accesses++
	pte := n.ptes[vpnIndex(va, ptLevels-1)]
	if !pte.Valid {
		return PTE{}, accesses, fmt.Errorf("iommu: fault (invalid leaf) for va %#x", uint64(va))
	}
	return pte, accesses, nil
}

// MappedPages reports how many 4KB pages are mapped.
func (t *PageTable) MappedPages() int { return t.pages }
