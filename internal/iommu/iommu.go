package iommu

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xlate"
)

// Config holds the IOMMU timing and size parameters.
type Config struct {
	// IOTLBEntries is the fully-associative TLB size (paper: 4..32).
	IOTLBEntries int
	// WalkCyclesPerAccess is the latency of one page-walker memory
	// access. Walkers hit DRAM (or a partially-effective walk cache);
	// the default assumes upper levels usually hit the walk cache so
	// the average access is cheaper than raw DRAM latency.
	WalkCyclesPerAccess sim.Cycle
	// FlushOnContextSwitch models the sMMU invalidating the IOTLB when
	// the NPU is handed to a different task/world (ping-pong).
	FlushOnContextSwitch bool
	// TagWithASID gives IOTLB entries an address-space tag so multiple
	// streams coexist without flushing (modern sMMU stream IDs);
	// capacity contention between the streams remains.
	TagWithASID bool
	// NoParity disables IOTLB entry parity. Parity is on by default:
	// it is timing-invisible until an entry is actually corrupted, and
	// without it a flipped PPN silently misdirects DMA.
	NoParity bool
}

// DefaultConfig mirrors the paper's TrustZone-NPU setup.
func DefaultConfig(entries int) Config {
	return Config{
		IOTLBEntries:         entries,
		WalkCyclesPerAccess:  80,
		FlushOnContextSwitch: true,
	}
}

// IOMMU implements xlate.Translator with page-granular translation:
// one IOTLB lookup per 64-byte memory packet (the energy/count model of
// Fig. 13(b)), one potential page walk per newly-touched page (the
// stall model of Fig. 13(a)), and a full flush on context switch.
type IOMMU struct {
	cfg     Config
	table   *PageTable
	tlb     *IOTLB
	stats   *sim.Stats
	inj     *fault.Injector
	curTask int
	// WalkStallCycles accumulates total stall for reporting.
	WalkStallCycles sim.Cycle

	// Observability: pre-resolved instruments, nil unless AttachObserver
	// was called.
	obsWalk *obs.Histogram
	obsRec  *trace.Recorder
}

// New builds an IOMMU over its IO page table.
func New(cfg Config, stats *sim.Stats) *IOMMU {
	u := &IOMMU{
		cfg:     cfg,
		table:   NewPageTable(),
		tlb:     NewIOTLB(cfg.IOTLBEntries),
		stats:   stats,
		curTask: -1,
	}
	u.tlb.stats = stats
	if !cfg.NoParity {
		u.tlb.EnableParity()
	}
	return u
}

// AttachInjector points the IOMMU at a fault injector; IOTLB
// corruption events land on the next translation at/after their cycle.
func (u *IOMMU) AttachInjector(inj *fault.Injector) { u.inj = inj }

// AttachObserver wires the IOMMU into an observability layer: an
// iotlb.walk.cycles histogram of per-translation walk stall plus a
// span per translation that actually walked. Nil detaches.
func (u *IOMMU) AttachObserver(o *obs.Observer) {
	if o == nil {
		u.obsWalk, u.obsRec = nil, nil
		return
	}
	u.obsWalk = o.Registry().Histogram("iotlb.walk.cycles", obs.DefaultCycleBuckets())
	u.obsRec = o.Trace()
}

// Table exposes the IO page table so the (untrusted) driver can map
// DMA buffers, and the TEE path can install secure mappings.
func (u *IOMMU) Table() *PageTable { return u.table }

// TLB exposes the IOTLB for inspection in tests and experiments.
func (u *IOMMU) TLB() *IOTLB { return u.tlb }

// Name implements xlate.Translator.
func (u *IOMMU) Name() string {
	return fmt.Sprintf("iotlb-%d", u.cfg.IOTLBEntries)
}

// OnContextSwitch implements xlate.Translator: switching the NPU to a
// different address space invalidates the IOTLB.
func (u *IOMMU) OnContextSwitch(taskID int) {
	if taskID == u.curTask {
		return
	}
	first := u.curTask == -1
	u.curTask = taskID
	if u.cfg.FlushOnContextSwitch && !first {
		u.tlb.FlushAll()
		if u.stats != nil {
			u.stats.Inc(sim.CtrIOTLBFlushes)
		}
	}
}

// Translate implements xlate.Translator. The request must be mapped
// with sufficient permission on every page it touches and, for
// secure-world requests, on secure (S-bit) PTEs; a normal-world
// request touching a secure PTE is rejected — that is the TrustZone
// sMMU check.
func (u *IOMMU) Translate(req xlate.Request, at sim.Cycle) (xlate.Result, error) {
	if req.Bytes == 0 {
		return xlate.Result{}, fmt.Errorf("iommu: empty request")
	}
	if u.inj.Enabled() {
		for {
			ev, ok := u.inj.Take(fault.IOTLBCorrupt, at)
			if !ok {
				break
			}
			u.tlb.Corrupt(ev.Sel, ev.Bit)
		}
	}
	firstPage := mem.PageAlignDown(mem.PhysAddr(req.VA))
	lastPage := mem.PageAlignDown(mem.PhysAddr(uint64(req.VA) + req.Bytes - 1))
	var stall sim.Cycle
	var basePA mem.PhysAddr
	prevPPN := uint64(0)
	first := true

	asid := 0
	if u.cfg.TagWithASID {
		asid = req.TaskID
	}
	for page := firstPage; ; page += mem.PageSize {
		va := mem.VirtAddr(page)
		pte, hit := u.tlb.Lookup(asid, va)
		if !hit {
			walked, accesses, err := u.table.Walk(va)
			if u.stats != nil {
				u.stats.Inc(sim.CtrPageWalks)
				u.stats.Add(sim.CtrPageWalkCycles, int64(u.cfg.WalkCyclesPerAccess)*int64(accesses))
			}
			stall += u.cfg.WalkCyclesPerAccess * sim.Cycle(accesses)
			if err != nil {
				return xlate.Result{}, err
			}
			pte = walked
			u.tlb.Insert(asid, va, pte)
		}
		if !pte.Perm.Has(req.Need) {
			return xlate.Result{}, fmt.Errorf("iommu: %s access to va %#x denied (pte %s)",
				req.Need, uint64(req.VA), pte.Perm)
		}
		if pte.Secure && req.World != mem.Secure {
			return xlate.Result{}, fmt.Errorf("iommu: normal-world access to secure mapping va %#x", uint64(va))
		}
		if first {
			basePA = mem.PhysAddr(pte.PPN*mem.PageSize) + (mem.PhysAddr(req.VA) - page)
			first = false
		} else if pte.PPN != prevPPN+1 {
			// The DMA engine requires physically contiguous targets per
			// request; drivers allocate from CMA so this holds. Guard it.
			return xlate.Result{}, fmt.Errorf("iommu: request %#x+%d not physically contiguous",
				uint64(req.VA), req.Bytes)
		}
		prevPPN = pte.PPN
		if page == lastPage {
			break
		}
	}

	// Energy/count model: the IOTLB is consulted for every memory
	// packet, not just per page (Fig. 13(b)). The per-page Lookup calls
	// above already counted once per page; add the remaining packets.
	packets := req.Packets()
	pages := uint64(lastPage-firstPage)/mem.PageSize + 1
	if packets > pages {
		u.tlb.Lookups += packets - pages
		u.tlb.Hits += packets - pages
	}
	if u.stats != nil {
		u.stats.Add(sim.CtrIOTLBLookups, int64(packets))
		u.stats.Add(sim.CtrTranslations, int64(packets))
		u.stats.Add(sim.CtrTranslationStall, int64(stall))
	}
	u.WalkStallCycles += stall
	if stall > 0 && u.obsWalk != nil {
		u.obsWalk.Observe(int64(stall))
		u.obsRec.Record(trace.Event{
			Name: "iotlb.walk", Kind: trace.KindIOTLB, Core: req.TaskID,
			Start: at, End: at + stall,
		})
	}
	return xlate.Result{PA: basePA, Stall: stall}, nil
}
