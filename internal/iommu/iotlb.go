package iommu

import "repro/internal/mem"

// IOTLBEntry caches one translation. ASID tags the owning address
// space (stream ID) so entries from different tasks can coexist; an
// untagged TLB treats every entry as ASID 0 and must flush on switch.
type IOTLBEntry struct {
	VPN    uint64
	ASID   int
	PTE    PTE
	valid  bool
	lastAt uint64 // LRU timestamp
}

// IOTLB is a fully-associative translation cache with true-LRU
// replacement. The paper evaluates 4/8/16/32-entry configurations
// (Fig. 13); small TLBs thrash on tile-strided NPU access patterns.
type IOTLB struct {
	entries []IOTLBEntry
	tick    uint64

	Lookups uint64
	Hits    uint64
	Misses  uint64
	Flushes uint64
}

// NewIOTLB returns a TLB with n entries.
func NewIOTLB(n int) *IOTLB {
	return &IOTLB{entries: make([]IOTLBEntry, n)}
}

// Size reports the configured entry count.
func (t *IOTLB) Size() int { return len(t.entries) }

// Lookup searches the TLB for the page containing va under the given
// address-space tag (pass 0 for an untagged TLB).
func (t *IOTLB) Lookup(asid int, va mem.VirtAddr) (PTE, bool) {
	t.tick++
	t.Lookups++
	vpn := uint64(va) / mem.PageSize
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn && e.ASID == asid {
			e.lastAt = t.tick
			t.Hits++
			return e.PTE, true
		}
	}
	t.Misses++
	return PTE{}, false
}

// Insert fills the LRU (or first invalid) way with a translation.
func (t *IOTLB) Insert(asid int, va mem.VirtAddr, pte PTE) {
	if len(t.entries) == 0 {
		return
	}
	t.tick++
	vpn := uint64(va) / mem.PageSize
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.VPN == vpn && e.ASID == asid { // refresh existing entry
			victim = i
			break
		}
		if e.lastAt < t.entries[victim].lastAt {
			victim = i
		}
	}
	t.entries[victim] = IOTLBEntry{VPN: vpn, ASID: asid, PTE: pte, valid: true, lastAt: t.tick}
}

// FlushAll invalidates every entry (on context switch / world switch —
// the "ping-pong" cost the paper cites).
func (t *IOTLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.Flushes++
}

// Valid reports how many entries currently hold translations.
func (t *IOTLB) Valid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
