package iommu

import (
	"repro/internal/mem"
	"repro/internal/sim"
)

// IOTLBEntry caches one translation. ASID tags the owning address
// space (stream ID) so entries from different tasks can coexist; an
// untagged TLB treats every entry as ASID 0 and must flush on switch.
type IOTLBEntry struct {
	VPN    uint64
	ASID   int
	PTE    PTE
	valid  bool
	lastAt uint64 // LRU timestamp
	parity uint8  // stamped at fill when parity protection is on
}

// IOTLB is a fully-associative translation cache with true-LRU
// replacement. The paper evaluates 4/8/16/32-entry configurations
// (Fig. 13); small TLBs thrash on tile-strided NPU access patterns.
type IOTLB struct {
	entries []IOTLBEntry
	tick    uint64
	parity  bool
	stats   *sim.Stats

	Lookups      uint64
	Hits         uint64
	Misses       uint64
	Flushes      uint64
	ParityErrors uint64
}

// NewIOTLB returns a TLB with n entries.
func NewIOTLB(n int) *IOTLB {
	return &IOTLB{entries: make([]IOTLBEntry, n)}
}

// EnableParity arms per-entry parity: fills stamp a parity byte over
// the tag and translation, lookups verify it and turn a corrupted
// entry into a miss (invalidate + re-walk) instead of a silent
// mistranslation.
func (t *IOTLB) EnableParity() { t.parity = true }

// ParityEnabled reports whether entry parity is armed.
func (t *IOTLB) ParityEnabled() bool { return t.parity }

// Size reports the configured entry count.
func (t *IOTLB) Size() int { return len(t.entries) }

// entryParity folds the protected fields of an entry into one byte.
func entryParity(vpn uint64, asid int, pte PTE) uint8 {
	var p uint8
	fold := func(v uint64) {
		for i := 0; i < 8; i++ {
			p ^= uint8(v >> (8 * i))
		}
	}
	fold(vpn)
	fold(uint64(asid))
	fold(pte.PPN)
	p ^= uint8(pte.Perm)
	if pte.Secure {
		p ^= 0x80
	}
	return p
}

// Lookup searches the TLB for the page containing va under the given
// address-space tag (pass 0 for an untagged TLB). A parity-protected
// entry that fails verification is invalidated and reported as a miss
// — the caller re-walks the page table, which is the recovery.
func (t *IOTLB) Lookup(asid int, va mem.VirtAddr) (PTE, bool) {
	t.tick++
	t.Lookups++
	vpn := uint64(va) / mem.PageSize
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.VPN == vpn && e.ASID == asid {
			if t.parity && e.parity != entryParity(e.VPN, e.ASID, e.PTE) {
				e.valid = false
				t.ParityErrors++
				if t.stats != nil {
					t.stats.Inc(sim.CtrIOTLBParityErrors)
				}
				break
			}
			e.lastAt = t.tick
			t.Hits++
			return e.PTE, true
		}
	}
	t.Misses++
	return PTE{}, false
}

// Insert fills the LRU (or first invalid) way with a translation.
func (t *IOTLB) Insert(asid int, va mem.VirtAddr, pte PTE) {
	if len(t.entries) == 0 {
		return
	}
	t.tick++
	vpn := uint64(va) / mem.PageSize
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
			break
		}
		if e.VPN == vpn && e.ASID == asid { // refresh existing entry
			victim = i
			break
		}
		if e.lastAt < t.entries[victim].lastAt {
			victim = i
		}
	}
	t.entries[victim] = IOTLBEntry{
		VPN: vpn, ASID: asid, PTE: pte, valid: true, lastAt: t.tick,
		parity: entryParity(vpn, asid, pte),
	}
}

// Corrupt flips one bit of a valid entry's physical page number
// without refreshing its parity — an SRAM upset in the TLB array. The
// victim entry is chosen deterministically by sel over the valid
// entries in way order. It reports whether any entry was hit.
func (t *IOTLB) Corrupt(sel uint64, bit uint8) bool {
	valid := t.Valid()
	if valid == 0 {
		return false
	}
	target := int(sel % uint64(valid))
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			continue
		}
		if target == 0 {
			e.PTE.PPN ^= 1 << uint(bit%64)
			return true
		}
		target--
	}
	return false
}

// FlushAll invalidates every entry (on context switch / world switch —
// the "ping-pong" cost the paper cites).
func (t *IOTLB) FlushAll() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.Flushes++
}

// Valid reports how many entries currently hold translations.
func (t *IOTLB) Valid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
