package iommu

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/xlate"
)

// A corrupted IOTLB entry is caught by parity on the next lookup,
// invalidated, and re-walked: the translation comes back correct at
// the cost of one page walk.
func TestIOTLBCorruptionDetectedAndRewalked(t *testing.T) {
	u, stats := newIOMMU(t, 8)
	req := xlate.Request{VA: 0x10000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}
	first, err := u.Translate(req, 0)
	if err != nil {
		t.Fatal(err)
	}

	if !u.TLB().Corrupt(0, 12) {
		t.Fatal("no entry to corrupt")
	}
	res, err := u.Translate(req, 0)
	if err != nil {
		t.Fatalf("corrupted entry not recovered: %v", err)
	}
	if res.PA != first.PA {
		t.Fatalf("recovered PA %#x != %#x", uint64(res.PA), uint64(first.PA))
	}
	if res.Stall == 0 {
		t.Fatal("recovery skipped the re-walk")
	}
	if u.TLB().ParityErrors != 1 || stats.Get(sim.CtrIOTLBParityErrors) != 1 {
		t.Fatalf("parity errors: tlb=%d ctr=%d", u.TLB().ParityErrors, stats.Get(sim.CtrIOTLBParityErrors))
	}
}

// Without parity the corrupted PPN silently misdirects the DMA — the
// baseline that motivates parity-on-by-default.
func TestIOTLBCorruptionSilentWithoutParity(t *testing.T) {
	stats := sim.NewStats()
	cfg := DefaultConfig(8)
	cfg.NoParity = true
	u := New(cfg, stats)
	if err := u.Table().MapRange(0x10000, 0x8001_0000, 4*mem.PageSize, mem.PermRW, false); err != nil {
		t.Fatal(err)
	}
	req := xlate.Request{VA: 0x10000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}
	first, err := u.Translate(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !u.TLB().Corrupt(0, 12) {
		t.Fatal("no entry to corrupt")
	}
	res, err := u.Translate(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PA == first.PA {
		t.Fatal("corruption had no effect without parity")
	}
	if u.TLB().ParityErrors != 0 {
		t.Fatal("parity fired while disabled")
	}
}

// Injector-scheduled IOTLB corruption lands on the translate path and
// is recovered in the same call stream.
func TestInjectorDrivenIOTLBCorruption(t *testing.T) {
	u, stats := newIOMMU(t, 8)
	inj := fault.NewInjector(fault.Plan{Events: []fault.Event{
		{At: 1, Kind: fault.IOTLBCorrupt, Sel: 0, Bit: 7},
	}}, stats)
	u.AttachInjector(inj)

	req := xlate.Request{VA: 0x10000, Bytes: 64, Need: mem.PermRead, World: mem.Normal}
	first, err := u.Translate(req, 0) // walk + insert; the event is not yet due
	if err != nil {
		t.Fatal(err)
	}
	// The event fires at the head of this call, corrupting the cached
	// entry the lookup is about to use.
	res, err := u.Translate(req, 1)
	if err != nil {
		t.Fatalf("not recovered: %v", err)
	}
	if res.PA != first.PA {
		t.Fatalf("PA %#x != %#x", uint64(res.PA), uint64(first.PA))
	}
	if inj.Remaining() != 0 {
		t.Fatal("event not consumed")
	}
	if stats.Get(sim.CtrIOTLBParityErrors) != 1 {
		t.Fatalf("parity detections = %d, want 1", stats.Get(sim.CtrIOTLBParityErrors))
	}
}
