package monitor

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/guarder"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
)

// bootKVWorld is bootWorld with a configurable ID-tag width: KV
// residency needs domains beyond the two-world minimum.
func bootKVWorld(t *testing.T, idBits int) *world {
	t.Helper()
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	machine := tee.NewMachine(phys)
	loader, fw, teeos, monBlob := []byte("ldr"), []byte("fw"), []byte("teeos"), []byte("npu-monitor")
	machine.BootChain().AddStage("trusted-loader", tee.MeasureBytes(loader))
	machine.BootChain().AddStage("trusted-firmware", tee.MeasureBytes(fw))
	machine.BootChain().AddStage("teeos", tee.MeasureBytes(teeos))
	machine.BootChain().AddStage("npu-monitor", tee.MeasureBytes(monBlob))
	if err := machine.Boot([][]byte{loader, fw, teeos, monBlob}); err != nil {
		t.Fatal(err)
	}
	cfg := npu.DefaultConfig()
	cfg.IDBits = idBits
	acc, err := npu.New(cfg, phys, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	guarders := make(map[int]*guarder.Guarder)
	for i := range acc.Cores() {
		guarders[i] = guarder.NewDefault(stats)
	}
	mon, err := New(machine, acc, guarders, secureBase, secureSize, stats)
	if err != nil {
		t.Fatal(err)
	}
	return &world{machine: machine, acc: acc, mon: mon, guarders: guarders, stats: stats}
}

func loadKVTask(t *testing.T, w *world, cores []int) int {
	t.Helper()
	prog := testProgram(t)
	id, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	core, err := w.acc.Core(cores[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Load(id, cores, 0, core.Scratchpad().Lines()); err != nil {
		t.Fatal(err)
	}
	return id
}

func TestKVAllocClaimsPartitionWindow(t *testing.T) {
	w := bootKVWorld(t, 4)
	id := loadKVTask(t, w, []int{0})
	core, _ := w.acc.Core(0)
	sp := core.Scratchpad()

	dom, err := w.mon.KVAlloc(id, 0, 32, 4096)
	if err != nil {
		t.Fatalf("kv alloc: %v", err)
	}
	if dom < 2 {
		t.Fatalf("kv domain %d, want >= 2 (0/1 are the world domains)", dom)
	}
	r, ok := w.mon.KVRegionFor(id, 0)
	if !ok {
		t.Fatal("no kv region recorded")
	}
	start := sp.Lines() - sp.Lines()/4
	if r.From < start || r.To > sp.Lines() || r.Lines() != 32 {
		t.Fatalf("window [%d,%d) outside kv partition [%d,%d)", r.From, r.To, start, sp.Lines())
	}
	if n := sp.CountDomain(dom); n != 32 {
		t.Fatalf("%d lines tagged %d, want 32", n, dom)
	}
	if w.mon.TransitionBitmap()&(1<<TrKVAlloc) == 0 {
		t.Fatalf("TrKVAlloc not noted: %#x", w.mon.TransitionBitmap())
	}

	// Monitor-mediated: the same request through the trampoline for a
	// second core reports the domain as the reply value.
	id2 := loadKVTask(t, w, []int{1})
	rep := w.mon.Dispatch(Call{Func: FnKVAlloc, Args: []uint64{uint64(id2), 1, 16, 1024}})
	if rep.Err != nil {
		t.Fatalf("FnKVAlloc: %v", rep.Err)
	}
	if rep.Value < 2 {
		t.Fatalf("FnKVAlloc domain %d, want >= 2", rep.Value)
	}
}

// The point of residency: a preemption's context-switch scrub walks
// around the KV window, so the cache survives with its bytes intact
// and its isolation still enforced by the ID bits.
func TestKVWindowSurvivesPreemptionIsolated(t *testing.T) {
	w := bootKVWorld(t, 4)
	id := loadKVTask(t, w, []int{0})
	core, _ := w.acc.Core(0)
	sp := core.Scratchpad()

	dom, err := w.mon.KVAlloc(id, 0, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := w.mon.KVRegionFor(id, 0)
	sentinel := []byte("kv-cache-sentinel")[:sp.LineBytes()]
	if err := sp.Write(dom, r.From+2, sentinel); err != nil {
		t.Fatal(err)
	}
	// Secure residue outside the window, to prove the scrub still runs.
	if err := sp.Write(spad.SecureDomain, 5, sentinel); err != nil {
		t.Fatal(err)
	}

	if err := w.mon.Preempt(id); err != nil {
		t.Fatal(err)
	}
	if n := sp.CountDomain(spad.SecureDomain); n != 0 {
		t.Fatalf("%d secure lines survived the preemption scrub", n)
	}
	buf := make([]byte, sp.LineBytes())
	if err := sp.Read(dom, r.From+2, buf); err != nil {
		t.Fatalf("owner read of resident kv after preempt: %v", err)
	}
	if !bytes.Equal(buf, sentinel) {
		t.Fatalf("kv bytes did not survive preemption: %q", buf)
	}
	// Every other domain is refused by the §IV-B read rule.
	for _, probe := range []spad.DomainID{spad.NonSecure, spad.SecureDomain, dom + 1} {
		if err := sp.Read(probe, r.From+2, buf); !errors.Is(err, spad.ErrIsolation) {
			t.Fatalf("domain %d read of kv line: err=%v, want ErrIsolation", probe, err)
		}
	}

	// Owner teardown while preempted (queued): window scrubbed + freed.
	if err := w.mon.Unload(id); err != nil {
		t.Fatal(err)
	}
	if n := sp.CountDomain(dom); n != 0 {
		t.Fatalf("%d kv lines survived the owner's unload", n)
	}
	if _, ok := w.mon.KVRegionFor(id, 0); ok {
		t.Fatal("kv region survived the owner's unload")
	}
	if w.mon.TransitionBitmap()&(1<<TrKVScrub) == 0 {
		t.Fatalf("TrKVScrub not noted: %#x", w.mon.TransitionBitmap())
	}
}

func TestKVAbortScrubsWindows(t *testing.T) {
	w := bootKVWorld(t, 4)
	id := loadKVTask(t, w, []int{0})
	core, _ := w.acc.Core(0)
	sp := core.Scratchpad()
	dom, err := w.mon.KVAlloc(id, 0, 8, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Abort(id); err != nil {
		t.Fatal(err)
	}
	if n := sp.CountDomain(dom); n != 0 {
		t.Fatalf("%d kv lines survived the abort", n)
	}
	if len(w.mon.KVRegions()) != 0 {
		t.Fatal("kv regions survived the abort")
	}
}

func TestKVAllocRefusals(t *testing.T) {
	w := bootKVWorld(t, 2) // maxDomain = 3: exactly two kv domains
	if _, err := w.mon.KVAlloc(99, 0, 8, 512); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task: %v", err)
	}
	prog := testProgram(t)
	queued, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.mon.KVAlloc(queued, 0, 8, 512); err == nil {
		t.Fatal("kv alloc for a never-loaded task accepted")
	}
	id := loadKVTask(t, w, []int{0})
	if _, err := w.mon.KVAlloc(id, 3, 8, 512); err == nil {
		t.Fatal("kv alloc on a core the task is not loaded on accepted")
	}
	if _, err := w.mon.KVAlloc(id, 0, 0, 512); err == nil {
		t.Fatal("zero-line kv alloc accepted")
	}
	core, _ := w.acc.Core(0)
	if _, err := w.mon.KVAlloc(id, 0, core.Scratchpad().Lines(), 512); !errors.Is(err, ErrKVExhausted) {
		t.Fatalf("partition-sized overflow: %v", err)
	}
	if _, err := w.mon.KVAlloc(id, 0, 8, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := w.mon.KVAlloc(id, 0, 8, 512); !errors.Is(err, ErrKVDup) {
		t.Fatalf("duplicate region: %v", err)
	}
	// Two more tasks on the same core: the second exhausts the 2-bit
	// domain space.
	id2 := loadKVTask(t, w, []int{1})
	if err := w.mon.Preempt(id2); err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Load(id2, []int{0}, 0, core.Scratchpad().Lines()/2); err == nil {
		// Overlap with id's full-range load is expected to refuse; load
		// elsewhere in that case is irrelevant to the domain-space check
		// below, so tolerate either.
		t.Log("secondary load accepted")
	}
	if _, err := w.mon.KVAlloc(id2, 0, 8, 512); err == nil {
		t.Fatal("kv alloc for an overlapping/unloaded task accepted")
	}
	if w.mon.TransitionBitmap()&(1<<TrKVRefused) == 0 {
		t.Fatalf("TrKVRefused not noted: %#x", w.mon.TransitionBitmap())
	}
}

func TestKVConfigTooNarrow(t *testing.T) {
	w := bootKVWorld(t, 1)
	id := loadKVTask(t, w, []int{0})
	if _, err := w.mon.KVAlloc(id, 0, 8, 512); !errors.Is(err, ErrKVConfig) {
		t.Fatalf("1-bit ID state: %v, want ErrKVConfig", err)
	}
}

func TestKVDomainSpaceExhaustion(t *testing.T) {
	w := bootKVWorld(t, 2) // domains 2 and 3 available
	core, _ := w.acc.Core(0)
	lines := core.Scratchpad().Lines()
	quarter := lines / 8
	ids := make([]int, 3)
	for i := range ids {
		prog := testProgram(t)
		id, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.mon.Load(id, []int{0}, i*quarter, (i+1)*quarter); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	if _, err := w.mon.KVAlloc(ids[0], 0, 4, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := w.mon.KVAlloc(ids[1], 0, 4, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := w.mon.KVAlloc(ids[2], 0, 4, 64); !errors.Is(err, ErrKVExhausted) {
		t.Fatalf("third kv domain on a 2-bit core: %v, want ErrKVExhausted", err)
	}
	// Retiring one domain makes it reusable.
	if err := w.mon.Unload(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := w.mon.KVAlloc(ids[2], 0, 4, 64); err != nil {
		t.Fatalf("kv alloc after domain retirement: %v", err)
	}
}
