package monitor

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/guarder"
	"repro/internal/isolator"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/npu"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
)

// Errors the monitor returns to the untrusted side. They carry no
// secret-dependent detail beyond the failing check.
var (
	ErrNotBooted       = errors.New("monitor: machine has not completed secure boot")
	ErrBadMeasurement  = errors.New("monitor: code measurement mismatch")
	ErrUnknownTask     = errors.New("monitor: unknown secure task")
	ErrQueueEmpty      = errors.New("monitor: secure task queue empty")
	ErrBadFunc         = errors.New("monitor: unknown trampoline function")
	ErrChunkNotSecure  = errors.New("monitor: task chunk outside secure memory")
	ErrOverlappingSpad = errors.New("monitor: scratchpad ranges overlap")
)

// SecureTask is one verified task waiting in (or loaded from) the
// secure task queue.
type SecureTask struct {
	ID      int
	Program *npu.Program
	// Model is the decrypted model blob, held only in secure memory.
	model []byte
	// Chunk is the task's buffer in secure memory.
	Chunk     mem.PhysAddr
	ChunkSize uint64
	// Topology is the expected NoC arrangement for multi-core tasks.
	Topology isolator.Topology
	// Cores are the verified cores the task was loaded onto.
	Cores []int
	// SpadLines is the scratchpad range reserved per core.
	SpadLines [2]int
	Loaded    bool
}

// Transition bits for the monitor's state-transition coverage bitmap
// (TransitionBitmap). Bits 0..15 are set by the trampoline dispatcher:
// bit 2*(f-1) when FuncID f returned ok, bit 2*(f-1)+1 when it
// returned an error. Bits 16+ mark semantic transitions inside the
// monitor's task state machine; together they make the monitor's
// explored state space observable to the coverage-guided campaign
// harness (internal/campaign) without changing a single simulated
// cycle — the bitmap is passive, like the obs counters next to it.
const (
	TrSubmitVerified  = 16 // task verified and enqueued
	TrSubmitBadMeas   = 17 // submit refused: measurement mismatch
	TrSubmitNoSpace   = 18 // submit refused: secure allocator full
	TrLoadOK          = 19 // verified task loaded onto cores
	TrLoadBadRoute    = 20 // load refused: route-integrity check
	TrPreemptLoaded   = 21 // loaded task preempted (flush paid)
	TrPreemptRefused  = 22 // preempt refused: unknown/not loaded
	TrAbortLoaded     = 23 // fail-closed abort of a loaded task
	TrAbortQueued     = 24 // fail-closed abort of a queued task
	TrUnloadLoaded    = 25 // orderly unload of a loaded task
	TrUnloadQueued    = 26 // orderly unload of a queued task
	TrMapOK           = 27 // non-secure window programmed
	TrMapSecureTarget = 28 // map refused: window into secure memory
	TrKeyProvisioned  = 29 // sealing key installed
	TrUnsealFailed    = 30 // submit refused: sealed model failed to open
)

// Monitor is the trusted software module. Construction requires the
// secure context, so only boot-path code can create one.
type Monitor struct {
	ctx      tee.Context
	machine  *tee.Machine
	acc      *npu.NPU
	guarders map[int]*guarder.Guarder
	// trusted allocator over the secure memory region
	alloc *mem.ContigAlloc
	// provisioned sealing keys by key ID (attested-channel stand-in)
	keys map[string][]byte
	// secure task queue
	queue  []*SecureTask
	tasks  map[int]*SecureTask
	nextID int
	stats  *sim.Stats

	// kv tracks resident KV-cache windows (kv.go), creation order.
	kv []*KVRegion

	// transitions accumulates the state-transition coverage bitmap
	// (see the Tr* bit constants); read through TransitionBitmap.
	transitions uint64

	// Observability: pre-resolved counters, nil unless AttachObserver
	// was called.
	obsCalls, obsAborts, obsRejects, obsPreempts *obs.Counter
}

// note sets one transition-coverage bit. Bits only accumulate; the
// bitmap over a monitor's lifetime records which corners of the task
// state machine were ever exercised.
func (m *Monitor) note(bit uint) {
	if bit < 64 {
		m.transitions |= 1 << bit
	}
}

// TransitionBitmap reports the accumulated state-transition coverage
// since boot: one bit per (trampoline function, outcome) pair plus the
// semantic Tr* transitions. The campaign fuzzer folds it into its
// coverage signal so exploring a new monitor transition is rewarded
// like exploring a new branch.
func (m *Monitor) TransitionBitmap() uint64 { return m.transitions }

// AttachObserver wires the monitor into an observability layer:
// monitor.call.count per trampoline entry, monitor.abort.count per
// fail-closed teardown, monitor.reject.count per refused request. Nil
// detaches.
func (m *Monitor) AttachObserver(o *obs.Observer) {
	if o == nil {
		m.obsCalls, m.obsAborts, m.obsRejects, m.obsPreempts = nil, nil, nil, nil
		return
	}
	scope := o.Registry().Scope("monitor")
	m.obsCalls = scope.Counter("call.count")
	m.obsAborts = scope.Counter("abort.count")
	m.obsRejects = scope.Counter("reject.count")
	m.obsPreempts = scope.Counter("preempt.count")
}

// call counts one trampoline entry into the monitor.
func (m *Monitor) call() {
	if m.stats != nil {
		m.stats.Inc(sim.CtrMonitorCalls)
	}
	if m.obsCalls != nil {
		m.obsCalls.Inc()
	}
}

// New builds the monitor. It refuses to run on a machine that has not
// completed secure boot (the boot chain loads and verifies the monitor
// itself before anything untrusted runs).
func New(machine *tee.Machine, acc *npu.NPU, guarders map[int]*guarder.Guarder, secureBase mem.PhysAddr, secureSize uint64, stats *sim.Stats) (*Monitor, error) {
	if !machine.Secured() {
		return nil, ErrNotBooted
	}
	return &Monitor{
		ctx:      machine.SecureContext(),
		machine:  machine,
		acc:      acc,
		guarders: guarders,
		alloc:    mem.NewContigAlloc(secureBase, secureSize),
		keys:     make(map[string][]byte),
		tasks:    make(map[int]*SecureTask),
		nextID:   1,
		stats:    stats,
	}, nil
}

// Reset returns the monitor to its just-booted state for pooled
// System reuse: provisioned keys are destroyed, queued and tracked
// secure tasks are dropped, the trusted allocator releases every slot,
// task IDs restart at 1, and the transition-coverage bitmap clears.
// The caller must re-run SetupPlatform afterwards (System.Reset does)
// so the guarders' static checking windows are reprogrammed exactly as
// at boot. Observability attachments are construction-scoped and left
// to the owner.
func (m *Monitor) Reset() {
	clear(m.keys)
	m.queue = nil
	clear(m.tasks)
	m.kv = nil
	m.nextID = 1
	m.transitions = 0
	m.alloc.Reset()
	m.obsCalls, m.obsAborts, m.obsRejects, m.obsPreempts = nil, nil, nil, nil
}

// ProvisionKey installs a model-sealing key. In a deployment this
// arrives over an attested channel rooted in the secure-boot report;
// here the model owner calls it directly against the monitor.
func (m *Monitor) ProvisionKey(keyID string, key []byte) error {
	if len(key) != KeySize {
		return fmt.Errorf("monitor: key %q must be %d bytes", keyID, KeySize)
	}
	k := make([]byte, KeySize)
	copy(k, key)
	m.keys[keyID] = k
	m.note(TrKeyProvisioned)
	return nil
}

// TaskSpec is what the untrusted driver submits through the
// trampoline: the compiled program, the owner's expected measurement,
// the sealed model, and the expected NoC topology.
type TaskSpec struct {
	Program     *npu.Program
	Expected    [sha256.Size]byte
	KeyID       string
	SealedModel []byte
	Topology    isolator.Topology
	// SpadLinesNeeded reserves scratchpad lines per core for the task
	// (the trusted allocator checks for overlap between secure tasks).
	SpadLinesNeeded int
}

// Submit is the code-verifier + trusted-allocator path: decrypt the
// model, measure the program against the owner's expectation, allocate
// the task's secure-memory chunk, and enqueue it.
func (m *Monitor) Submit(spec TaskSpec) (int, error) {
	m.call()
	if spec.Program == nil {
		return 0, m.reject(fmt.Errorf("monitor: nil program"))
	}
	// Code verifier: statically validate the op stream's structure,
	// then measure it against the owner's expectation.
	if err := spec.Program.Validate(); err != nil {
		return 0, m.reject(fmt.Errorf("monitor: program rejected: %w", err))
	}
	if got := spec.Program.Measurement(); got != spec.Expected {
		m.note(TrSubmitBadMeas)
		return 0, m.reject(ErrBadMeasurement)
	}
	var model []byte
	if len(spec.SealedModel) > 0 {
		key, ok := m.keys[spec.KeyID]
		if !ok {
			m.note(TrUnsealFailed)
			return 0, m.reject(fmt.Errorf("monitor: no key %q provisioned", spec.KeyID))
		}
		var err error
		model, err = OpenModel(key, spec.SealedModel)
		if err != nil {
			m.note(TrUnsealFailed)
			return 0, m.reject(err)
		}
	}
	// Trusted allocator: the task's working buffers live in secure
	// memory, never in the driver-controlled reserved heap.
	lo, hi := spec.Program.VASpan()
	size := uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PageAlignDown(mem.PhysAddr(lo)))
	chunk, err := m.alloc.Alloc(size, mem.PageSize)
	if err != nil {
		m.note(TrSubmitNoSpace)
		return 0, m.reject(err)
	}
	task := &SecureTask{
		ID:        m.nextID,
		Program:   spec.Program,
		model:     model,
		Chunk:     chunk,
		ChunkSize: size,
		Topology:  spec.Topology,
	}
	m.nextID++
	m.queue = append(m.queue, task)
	m.tasks[task.ID] = task
	m.note(TrSubmitVerified)
	return task.ID, nil
}

// Load is the secure-loader + context-setter path: verify the route
// integrity of the scheduled cores, check scratchpad reservations for
// overlap, flip the cores' ID states, and program each core's Guarder
// with the task's translation window and checking authority.
func (m *Monitor) Load(taskID int, cores []int, spadFrom, spadTo int) error {
	m.call()
	task, ok := m.tasks[taskID]
	if !ok {
		return m.reject(ErrUnknownTask)
	}
	// Secure loader: route integrity.
	coords := make([]noc.Coord, 0, len(cores))
	for _, ci := range cores {
		core, err := m.acc.Core(ci)
		if err != nil {
			return m.reject(err)
		}
		coords = append(coords, core.Coord())
	}
	topo := task.Topology
	if topo.Cores() == 0 {
		topo = isolator.Topology{W: 1, H: 1}
	}
	if err := isolator.VerifyRoute(topo, coords); err != nil {
		m.note(TrLoadBadRoute)
		return m.reject(err)
	}
	// Trusted allocator: no scratchpad overlap among loaded secure
	// tasks sharing a core.
	if spadTo <= spadFrom || spadFrom < 0 {
		return m.reject(fmt.Errorf("monitor: bad scratchpad range [%d,%d)", spadFrom, spadTo))
	}
	for _, other := range m.tasks {
		if !other.Loaded || other.ID == taskID {
			continue
		}
		if sharesCore(other.Cores, cores) && spadFrom < other.SpadLines[1] && other.SpadLines[0] < spadTo {
			return m.reject(ErrOverlappingSpad)
		}
	}
	// Context setter: core ID states + Guarder registers.
	for _, ci := range cores {
		core, err := m.acc.Core(ci)
		if err != nil {
			return m.reject(err)
		}
		if err := core.SetDomain(m.ctx, spad.SecureDomain); err != nil {
			return m.reject(err)
		}
		if g, ok := m.guarders[ci]; ok {
			lo, hi := task.Program.VASpan()
			vbase := mem.VirtAddr(mem.PageAlignDown(mem.PhysAddr(lo)))
			if err := g.SetTransReg(m.ctx, 0, guarder.TransReg{
				VBase: vbase, PBase: task.Chunk,
				Size: uint64(mem.PageAlignUp(mem.PhysAddr(hi)) - mem.PhysAddr(vbase)), Valid: true,
			}); err != nil {
				return m.reject(err)
			}
			if err := g.SetCheckReg(m.ctx, 1, guarder.CheckReg{
				Base: task.Chunk, Size: task.ChunkSize,
				Perm: mem.PermRW, World: mem.Secure, Valid: true,
			}); err != nil {
				return m.reject(err)
			}
		}
	}
	task.Cores = append([]int(nil), cores...)
	task.SpadLines = [2]int{spadFrom, spadTo}
	task.Loaded = true
	m.note(TrLoadOK)
	// Remove from the pending queue.
	for i, q := range m.queue {
		if q.ID == taskID {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	return nil
}

// Unload releases a task: reset the cores to non-secure, scrub the
// secure scratchpad lines, free the chunk.
func (m *Monitor) Unload(taskID int) error {
	m.call()
	task, ok := m.tasks[taskID]
	if !ok {
		return m.reject(ErrUnknownTask)
	}
	// The §IV-B flush contract for resident caches: the owner's unload
	// scrubs and frees its KV windows, wherever they were claimed.
	if err := m.releaseKV(taskID); err != nil {
		return m.reject(err)
	}
	if task.Loaded {
		m.note(TrUnloadLoaded)
		for _, ci := range task.Cores {
			core, err := m.acc.Core(ci)
			if err != nil {
				return m.reject(err)
			}
			sp := core.Scratchpad()
			if err := m.scrubSpadAround(sp, ci, task.SpadLines[0], minInt(task.SpadLines[1], sp.Lines())); err != nil {
				return m.reject(err)
			}
			if err := core.SetDomain(m.ctx, spad.NonSecure); err != nil {
				return m.reject(err)
			}
			if g, ok := m.guarders[ci]; ok {
				if err := g.ClearTask(m.ctx); err != nil {
					return m.reject(err)
				}
			}
		}
	} else {
		m.note(TrUnloadQueued)
	}
	if err := m.alloc.Free(task.Chunk); err != nil {
		return m.reject(err)
	}
	delete(m.tasks, taskID)
	for i, q := range m.queue {
		if q.ID == taskID {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	return nil
}

// Preempt evicts a loaded task from its cores without destroying it:
// the §IV-B flush-on-switch. The task's scratchpad and accumulator
// lines are scrubbed (no cross-domain bytes survive the switch), the
// cores' ID bits are reassigned to the non-secure domain, and every
// translation register is invalidated — exactly the context-switch
// teardown of Unload — but the task's secure chunk and decrypted model
// stay resident, so a later Load resumes it without re-verification.
// The preempted task returns to the tail of the pending queue.
func (m *Monitor) Preempt(taskID int) error {
	m.call()
	task, ok := m.tasks[taskID]
	if !ok {
		m.note(TrPreemptRefused)
		return m.reject(ErrUnknownTask)
	}
	if !task.Loaded {
		m.note(TrPreemptRefused)
		return m.reject(fmt.Errorf("monitor: task %d is not loaded", taskID))
	}
	m.note(TrPreemptLoaded)
	if m.obsPreempts != nil {
		m.obsPreempts.Inc()
	}
	for _, ci := range task.Cores {
		core, err := m.acc.Core(ci)
		if err != nil {
			return m.reject(err)
		}
		sp := core.Scratchpad()
		// Context-switch scrub walks around live KV windows: resident
		// caches (this task's and others') survive the preemption.
		if err := m.scrubSpadAround(sp, ci, task.SpadLines[0], minInt(task.SpadLines[1], sp.Lines())); err != nil {
			return m.reject(err)
		}
		acc := core.Accumulator()
		if err := acc.ResetSecure(m.ctx, 0, acc.Lines()); err != nil {
			return m.reject(err)
		}
		if err := core.SetDomain(m.ctx, spad.NonSecure); err != nil {
			return m.reject(err)
		}
		if g, ok := m.guarders[ci]; ok {
			if err := g.ClearTask(m.ctx); err != nil {
				return m.reject(err)
			}
		}
	}
	task.Loaded = false
	task.Cores = nil
	m.queue = append(m.queue, task)
	return nil
}

// Abort is the fail-closed teardown path the recovery machinery takes
// when a secure task hangs or hits an unrecoverable fault. Everything
// Unload does, plus: the task's scratchpad and accumulator lines are
// scrubbed, the decrypted model is zeroed, and the task's secure chunk
// is wiped before returning to the allocator — no secure state
// survives the abort, so even a fault at the worst possible moment
// leaves nothing for the normal world to find. The untrusted driver
// observes only an opaque "task gone" condition.
func (m *Monitor) Abort(taskID int) error {
	m.call()
	task, ok := m.tasks[taskID]
	if !ok {
		return m.reject(ErrUnknownTask)
	}
	if m.stats != nil {
		m.stats.Inc(sim.CtrMonitorAborts)
	}
	if m.obsAborts != nil {
		m.obsAborts.Inc()
	}
	if task.Loaded {
		m.note(TrAbortLoaded)
	} else {
		m.note(TrAbortQueued)
	}
	// Fail-closed for resident caches too: scrub + free the task's KV
	// windows before anything else becomes reachable.
	if err := m.releaseKV(taskID); err != nil {
		return m.reject(err)
	}
	if task.Loaded {
		for _, ci := range task.Cores {
			core, err := m.acc.Core(ci)
			if err != nil {
				return m.reject(err)
			}
			sp := core.Scratchpad()
			if err := m.scrubSpadAround(sp, ci, task.SpadLines[0], minInt(task.SpadLines[1], sp.Lines())); err != nil {
				return m.reject(err)
			}
			acc := core.Accumulator()
			if err := acc.ResetSecure(m.ctx, 0, acc.Lines()); err != nil {
				return m.reject(err)
			}
			if err := core.SetDomain(m.ctx, spad.NonSecure); err != nil {
				return m.reject(err)
			}
			if g, ok := m.guarders[ci]; ok {
				if err := g.ClearTask(m.ctx); err != nil {
					return m.reject(err)
				}
			}
		}
	}
	// Measurement-state teardown: zero the plaintext model and the
	// task's working chunk before the chunk becomes allocatable again.
	for i := range task.model {
		task.model[i] = 0
	}
	task.model = nil
	m.machine.Phys().Zero(task.Chunk, task.ChunkSize)
	if err := m.alloc.Free(task.Chunk); err != nil {
		return m.reject(err)
	}
	delete(m.tasks, taskID)
	for i, q := range m.queue {
		if q.ID == taskID {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			break
		}
	}
	return nil
}

// SetupPlatform installs the boot-time platform policy into every
// core's Guarder checking registers: the normal world may read/write
// the NPU-reserved region, the secure world additionally the secure
// region. Checking registers are rarely modified afterwards (§IV-A).
func (m *Monitor) SetupPlatform(reservedBase mem.PhysAddr, reservedSize uint64, secureBase mem.PhysAddr, secureSize uint64) error {
	for _, g := range m.guarders {
		if err := g.SetCheckReg(m.ctx, 0, guarder.CheckReg{
			Base: reservedBase, Size: reservedSize, Perm: mem.PermRW, World: mem.Normal, Valid: true,
		}); err != nil {
			return err
		}
		if err := g.SetCheckReg(m.ctx, 2, guarder.CheckReg{
			Base: reservedBase, Size: reservedSize, Perm: mem.PermRW, World: mem.Secure, Valid: true,
		}); err != nil {
			return err
		}
		if err := g.SetCheckReg(m.ctx, 3, guarder.CheckReg{
			Base: secureBase, Size: secureSize, Perm: mem.PermRW, World: mem.Secure, Valid: true,
		}); err != nil {
			return err
		}
	}
	return nil
}

// MapNonSecure programs a translation window for a NON-secure task on
// behalf of the untrusted driver (translation registers are secure
// state, so the driver cannot write them itself). The monitor applies
// no software checks beyond refusing windows that reach into
// secure-owned memory — for non-secure tasks the hardware checking
// registers carry the isolation (§IV-C: "for non-secure tasks, we do
// not apply any software checks and rely only on the hardware
// mechanisms").
func (m *Monitor) MapNonSecure(core int, slot int, vbase mem.VirtAddr, pbase mem.PhysAddr, size uint64) error {
	m.call()
	g, ok := m.guarders[core]
	if !ok {
		return m.reject(fmt.Errorf("monitor: core %d has no guarder", core))
	}
	if r, found := m.machine.Phys().FindRegion(pbase); found && r.Owner == mem.Secure {
		m.note(TrMapSecureTarget)
		return m.reject(fmt.Errorf("monitor: non-secure window targets secure region %q", r.Name))
	}
	if err := g.SetTransReg(m.ctx, slot, guarder.TransReg{VBase: vbase, PBase: pbase, Size: size, Valid: true}); err != nil {
		return err
	}
	m.note(TrMapOK)
	return nil
}

// Task returns a loaded/queued task by ID.
func (m *Monitor) Task(taskID int) (*SecureTask, error) {
	t, ok := m.tasks[taskID]
	if !ok {
		return nil, ErrUnknownTask
	}
	return t, nil
}

// QueueLen reports pending (submitted, unloaded) secure tasks.
func (m *Monitor) QueueLen() int { return len(m.queue) }

// NextQueued peeks the oldest pending task ID.
func (m *Monitor) NextQueued() (int, error) {
	if len(m.queue) == 0 {
		return 0, ErrQueueEmpty
	}
	return m.queue[0].ID, nil
}

// ModelBytes exposes the decrypted model of a task. It demands the
// secure context: untrusted code cannot pull plaintext models out.
func (m *Monitor) ModelBytes(ctx tee.Context, taskID int) ([]byte, error) {
	if err := ctx.RequireSecure(); err != nil {
		return nil, err
	}
	t, ok := m.tasks[taskID]
	if !ok {
		return nil, ErrUnknownTask
	}
	return t.model, nil
}

func (m *Monitor) reject(err error) error {
	if m.stats != nil {
		m.stats.Inc(sim.CtrMonitorRejected)
	}
	if m.obsRejects != nil {
		m.obsRejects.Inc()
	}
	return err
}

func sharesCore(a, b []int) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
