package monitor

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"repro/internal/guarder"
	"repro/internal/isolator"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/taskimage"
	"repro/internal/tee"
	"repro/internal/workload"
)

const (
	secureBase = mem.PhysAddr(0x9000_0000)
	secureSize = uint64(128 << 20)
)

type world struct {
	machine  *tee.Machine
	acc      *npu.NPU
	mon      *Monitor
	guarders map[int]*guarder.Guarder
	stats    *sim.Stats
}

func bootWorld(t *testing.T) *world {
	t.Helper()
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	machine := tee.NewMachine(phys)
	loader, fw, teeos, monBlob := []byte("ldr"), []byte("fw"), []byte("teeos"), []byte("npu-monitor")
	for name, blob := range map[string][]byte{} {
		_ = name
		_ = blob
	}
	machine.BootChain().AddStage("trusted-loader", tee.MeasureBytes(loader))
	machine.BootChain().AddStage("trusted-firmware", tee.MeasureBytes(fw))
	machine.BootChain().AddStage("teeos", tee.MeasureBytes(teeos))
	machine.BootChain().AddStage("npu-monitor", tee.MeasureBytes(monBlob))
	if err := machine.Boot([][]byte{loader, fw, teeos, monBlob}); err != nil {
		t.Fatal(err)
	}
	acc, err := npu.New(npu.DefaultConfig(), phys, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	guarders := make(map[int]*guarder.Guarder)
	for i := range acc.Cores() {
		guarders[i] = guarder.NewDefault(stats)
	}
	mon, err := New(machine, acc, guarders, secureBase, secureSize, stats)
	if err != nil {
		t.Fatal(err)
	}
	return &world{machine: machine, acc: acc, mon: mon, guarders: guarders, stats: stats}
}

func testProgram(t *testing.T) *npu.Program {
	t.Helper()
	w := workload.Workload{
		Name: "sec",
		Layers: []workload.Layer{
			{Name: "l0", GEMMs: []workload.GEMM{{Name: "g0", M: 32, K: 64, N: 32}}},
		},
	}
	prog, _, err := npu.Compile(w, npu.DefaultConfig(), 0, npu.DefaultLayout)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestMonitorRequiresSecureBoot(t *testing.T) {
	phys := mem.NewPhysical()
	machine := tee.NewMachine(phys) // never booted
	acc, err := npu.New(npu.DefaultConfig(), phys, sim.NewStats(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(machine, acc, nil, secureBase, secureSize, nil); !errors.Is(err, ErrNotBooted) {
		t.Fatalf("monitor constructed without secure boot: %v", err)
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	key := bytes.Repeat([]byte{7}, KeySize)
	model := []byte("proprietary weights")
	sealed, err := SealModel(key, model)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenModel(key, sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("round trip mismatch")
	}
	// Tampered ciphertext fails closed.
	sealed[len(sealed)-1] ^= 1
	if _, err := OpenModel(key, sealed); err == nil {
		t.Fatal("tampered model decrypted")
	}
	// Wrong key size rejected.
	if _, err := SealModel([]byte("short"), model); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := OpenModel(key, []byte{1, 2}); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func submitSpec(t *testing.T, w *world, prog *npu.Program, topo isolator.Topology) int {
	t.Helper()
	key := bytes.Repeat([]byte{3}, KeySize)
	if err := w.mon.ProvisionKey("owner", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("model-bytes"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := w.mon.Submit(TaskSpec{
		Program:     prog,
		Expected:    prog.Measurement(),
		KeyID:       "owner",
		SealedModel: sealed,
		Topology:    topo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestSubmitVerifiesMeasurement(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id := submitSpec(t, w, prog, isolator.Topology{W: 1, H: 1})
	if id == 0 {
		t.Fatal("no task id")
	}
	if w.mon.QueueLen() != 1 {
		t.Fatalf("queue len = %d", w.mon.QueueLen())
	}
	// A tampered program (driver swapped an op) is rejected.
	evil := testProgram(t)
	expected := evil.Measurement()
	evil.Ops[0].VA ^= 0x1000
	if _, err := w.mon.Submit(TaskSpec{Program: evil, Expected: expected}); !errors.Is(err, ErrBadMeasurement) {
		t.Fatalf("tampered program accepted: %v", err)
	}
	if w.stats.Get(sim.CtrMonitorRejected) == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestSubmitRequiresProvisionedKey(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	_, err := w.mon.Submit(TaskSpec{
		Program:     prog,
		Expected:    prog.Measurement(),
		KeyID:       "missing",
		SealedModel: []byte("x"),
	})
	if err == nil {
		t.Fatal("submit with unknown key accepted")
	}
	if err := w.mon.ProvisionKey("bad", []byte("short")); err == nil {
		t.Fatal("short key provisioned")
	}
}

func TestLoadSetsContexts(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id := submitSpec(t, w, prog, isolator.Topology{W: 1, H: 1})
	if err := w.mon.Load(id, []int{0}, 0, 1024); err != nil {
		t.Fatal(err)
	}
	core, _ := w.acc.Core(0)
	if core.Domain() != spad.SecureDomain {
		t.Fatal("core not switched to secure domain")
	}
	// Guarder now translates the task's VA window to its secure chunk.
	task, err := w.mon.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	regs := w.guarders[0].TransRegs()
	if !regs[0].Valid || regs[0].PBase != task.Chunk {
		t.Fatalf("translation register not set: %+v", regs[0])
	}
	if w.mon.QueueLen() != 0 {
		t.Fatal("loaded task still queued")
	}
	// Unload scrubs and resets.
	if err := w.mon.Unload(id); err != nil {
		t.Fatal(err)
	}
	if core.Domain() != spad.NonSecure {
		t.Fatal("core not reset to non-secure")
	}
	if _, err := w.mon.Task(id); !errors.Is(err, ErrUnknownTask) {
		t.Fatal("unloaded task still known")
	}
}

func TestLoadRejectsWrongTopology(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id := submitSpec(t, w, prog, isolator.Topology{W: 2, H: 2})
	// Cores 0..3 on a 5-wide mesh form a 1x4 row: wrong shape.
	err := w.mon.Load(id, []int{0, 1, 2, 3}, 0, 1024)
	if err == nil {
		t.Fatal("1x4 allocation loaded for a 2x2 task")
	}
	var re *isolator.RouteError
	if !errors.As(err, &re) {
		t.Fatalf("error %T, want RouteError", err)
	}
	// Cores 0,1,5,6 form a 2x2 block (mesh width 5).
	if err := w.mon.Load(id, []int{0, 1, 5, 6}, 0, 1024); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsSpadOverlap(t *testing.T) {
	w := bootWorld(t)
	p1 := testProgram(t)
	p2 := testProgram(t)
	id1 := submitSpec(t, w, p1, isolator.Topology{W: 1, H: 1})
	id2 := submitSpec(t, w, p2, isolator.Topology{W: 1, H: 1})
	if err := w.mon.Load(id1, []int{0}, 0, 8192); err != nil {
		t.Fatal(err)
	}
	// Same core, overlapping lines -> rejected.
	if err := w.mon.Load(id2, []int{0}, 4096, 12288); !errors.Is(err, ErrOverlappingSpad) {
		t.Fatalf("overlapping scratchpad load: %v", err)
	}
	// Same core, disjoint lines -> fine.
	if err := w.mon.Load(id2, []int{0}, 8192, 12288); err != nil {
		t.Fatal(err)
	}
	// Bad ranges rejected.
	id3 := submitSpec(t, w, testProgram(t), isolator.Topology{W: 1, H: 1})
	if err := w.mon.Load(id3, []int{1}, 10, 10); err == nil {
		t.Fatal("empty scratchpad range accepted")
	}
}

func TestModelBytesGatedBySecureContext(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id := submitSpec(t, w, prog, isolator.Topology{W: 1, H: 1})
	if _, err := w.mon.ModelBytes(w.machine.NormalContext(), id); !errors.Is(err, tee.ErrPrivilege) {
		t.Fatalf("normal world read the plaintext model: %v", err)
	}
	model, err := w.mon.ModelBytes(w.machine.SecureContext(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(model, []byte("model-bytes")) {
		t.Fatal("model corrupted")
	}
}

func TestTrampolineDispatch(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	key := bytes.Repeat([]byte{9}, KeySize)
	if err := w.mon.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	rep := w.mon.Dispatch(Call{
		Func:     FnSubmit,
		Shared:   sealed,
		Program:  prog,
		Expected: prog.Measurement(),
		KeyID:    "k",
		Topology: isolator.Topology{W: 1, H: 1},
	})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	taskID := rep.Value
	if rep := w.mon.Dispatch(Call{Func: FnQueueLen}); rep.Value != 1 {
		t.Fatalf("queue len via trampoline = %d", rep.Value)
	}
	rep = w.mon.Dispatch(Call{Func: FnLoad, Args: []uint64{taskID, 0, 512, 2}})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	rep = w.mon.Dispatch(Call{Func: FnUnload, Args: []uint64{taskID}})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	// Malformed calls fail closed.
	if rep := w.mon.Dispatch(Call{Func: FnLoad, Args: []uint64{1}}); rep.Err == nil {
		t.Fatal("short load args accepted")
	}
	if rep := w.mon.Dispatch(Call{Func: FnUnload}); rep.Err == nil {
		t.Fatal("unload without args accepted")
	}
	if rep := w.mon.Dispatch(Call{Func: FuncID(99)}); !errors.Is(rep.Err, ErrBadFunc) {
		t.Fatal("unknown func accepted")
	}
}

func TestFuncIDString(t *testing.T) {
	for f, want := range map[FuncID]string{
		FnSubmit: "submit", FnLoad: "load", FnUnload: "unload",
		FnQueueLen: "queue-len", FuncID(42): "func(42)",
	} {
		if f.String() != want {
			t.Fatalf("%d -> %q", f, f.String())
		}
	}
}

func TestUnloadUnknownAndDoubleFree(t *testing.T) {
	w := bootWorld(t)
	if err := w.mon.Unload(999); !errors.Is(err, ErrUnknownTask) {
		t.Fatal("unknown unload accepted")
	}
	id := submitSpec(t, w, testProgram(t), isolator.Topology{W: 1, H: 1})
	if err := w.mon.Unload(id); err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Unload(id); !errors.Is(err, ErrUnknownTask) {
		t.Fatal("double unload accepted")
	}
}

func TestMeasureMatchesSHA256(t *testing.T) {
	blob := []byte("code")
	if Measure(blob) != sha256.Sum256(blob) {
		t.Fatal("Measure is not sha256")
	}
}

func TestTrampolineSubmitImage(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	key := bytes.Repeat([]byte{4}, KeySize)
	if err := w.mon.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("model"))
	if err != nil {
		t.Fatal(err)
	}
	img := &taskimage.Image{
		Name:        "imgtask",
		Program:     prog,
		Expected:    prog.Measurement(),
		KeyID:       "k",
		SealedModel: sealed,
		Topology:    isolator.Topology{W: 1, H: 1},
	}
	buf, err := taskimage.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	rep := w.mon.Dispatch(Call{Func: FnSubmitImage, Shared: buf})
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if rep := w.mon.Dispatch(Call{Func: FnLoad, Args: []uint64{rep.Value, 0, 256, 0}}); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	// A tampered image (flip an op byte) must fail the measurement
	// check even though the framing still parses.
	img2 := &taskimage.Image{
		Name:     "evil",
		Program:  testProgram(t),
		Expected: prog.Measurement(), // claims the honest measurement
		Topology: isolator.Topology{W: 1, H: 1},
	}
	img2.Program.Ops[0].VA ^= 0x40
	buf2, err := taskimage.Encode(img2)
	if err != nil {
		t.Fatal(err)
	}
	if rep := w.mon.Dispatch(Call{Func: FnSubmitImage, Shared: buf2}); !errors.Is(rep.Err, ErrBadMeasurement) {
		t.Fatalf("tampered image accepted: %v", rep.Err)
	}
	// Garbage bytes are rejected at the decoder.
	if rep := w.mon.Dispatch(Call{Func: FnSubmitImage, Shared: []byte("garbage")}); rep.Err == nil {
		t.Fatal("garbage image accepted")
	}
}

func TestSetupPlatformAndMapNonSecure(t *testing.T) {
	w := bootWorld(t)
	if err := w.machine.Phys().AddRegion(mem.Region{
		Name: "npu-reserved", Base: 0x8800_0000, Size: 64 << 20, Owner: mem.Normal, CrossPerm: mem.PermRW,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.machine.Phys().AddRegion(mem.Region{
		Name: "secure-dram", Base: secureBase, Size: secureSize, Owner: mem.Secure,
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.mon.SetupPlatform(0x8800_0000, 64<<20, secureBase, secureSize); err != nil {
		t.Fatal(err)
	}
	// The platform policy landed in every core's checking registers.
	for i := range w.acc.Cores() {
		regs := w.guarders[i].CheckRegs()
		if !regs[0].Valid || regs[0].World != mem.Normal {
			t.Fatalf("core %d: platform checking register missing", i)
		}
	}
	// Driver-requested non-secure window into reserved memory: allowed.
	if err := w.mon.MapNonSecure(0, 2, 0x2000, 0x8800_1000, 0x1000); err != nil {
		t.Fatal(err)
	}
	// Into secure memory: refused.
	if err := w.mon.MapNonSecure(0, 3, 0x3000, secureBase, 0x1000); err == nil {
		t.Fatal("non-secure window into secure memory accepted")
	}
	// Unknown core: refused.
	if err := w.mon.MapNonSecure(99, 2, 0x2000, 0x8800_1000, 0x1000); err == nil {
		t.Fatal("unknown core accepted")
	}
}

func TestNextQueued(t *testing.T) {
	w := bootWorld(t)
	if _, err := w.mon.NextQueued(); !errors.Is(err, ErrQueueEmpty) {
		t.Fatal("empty queue returned a task")
	}
	id1 := submitSpec(t, w, testProgram(t), isolator.Topology{W: 1, H: 1})
	id2 := submitSpec(t, w, testProgram(t), isolator.Topology{W: 1, H: 1})
	next, err := w.mon.NextQueued()
	if err != nil {
		t.Fatal(err)
	}
	if next != id1 {
		t.Fatalf("next = %d, want oldest %d", next, id1)
	}
	if err := w.mon.Load(id1, []int{0}, 0, 64); err != nil {
		t.Fatal(err)
	}
	next, err = w.mon.NextQueued()
	if err != nil {
		t.Fatal(err)
	}
	if next != id2 {
		t.Fatalf("next after load = %d, want %d", next, id2)
	}
}
