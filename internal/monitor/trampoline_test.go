package monitor

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/isolator"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/taskimage"
)

// Every malformed function ID must land in the fail-closed default
// arm, not in some adjacent handler.
func TestTrampolineRejectsMalformedFuncIDs(t *testing.T) {
	w := bootWorld(t)
	for _, f := range []FuncID{0, FnKVAlloc + 1, FuncID(0xffff_ffff)} {
		rep := w.mon.Dispatch(Call{Func: f, Args: []uint64{1, 2, 3, 4, 5}})
		if !errors.Is(rep.Err, ErrBadFunc) {
			t.Fatalf("func %d: err = %v, want ErrBadFunc", uint32(f), rep.Err)
		}
		if rep.Value != 0 {
			t.Fatalf("func %d returned a value: %d", uint32(f), rep.Value)
		}
	}
	if w.mon.QueueLen() != 0 {
		t.Fatal("malformed calls queued a task")
	}
}

// A shared-memory image truncated at any point must be rejected by the
// decoder without letting a task into the queue.
func TestTrampolineRejectsTruncatedImage(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	key := bytes.Repeat([]byte{8}, KeySize)
	if err := w.mon.ProvisionKey("k", key); err != nil {
		t.Fatal(err)
	}
	sealed, err := SealModel(key, []byte("model"))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := taskimage.Encode(&taskimage.Image{
		Name: "tsk", Program: prog, Expected: prog.Measurement(),
		KeyID: "k", SealedModel: sealed, Topology: isolator.Topology{W: 1, H: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The full image is accepted...
	if rep := w.mon.Dispatch(Call{Func: FnSubmitImage, Shared: buf}); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	// ...every truncation is not.
	rejectedBefore := w.stats.Get(sim.CtrMonitorRejected)
	cuts := []int{0, 1, 4, len(buf) / 4, len(buf) / 2, len(buf) - 1}
	for _, n := range cuts {
		rep := w.mon.Dispatch(Call{Func: FnSubmitImage, Shared: buf[:n]})
		if rep.Err == nil {
			t.Fatalf("image truncated to %d bytes accepted", n)
		}
	}
	if w.mon.QueueLen() != 1 {
		t.Fatalf("queue len = %d after truncated submits", w.mon.QueueLen())
	}
	if got := w.stats.Get(sim.CtrMonitorRejected); got != rejectedBefore+int64(len(cuts)) {
		t.Fatalf("rejections counted = %d, want %d", got-rejectedBefore, len(cuts))
	}
}

// An abort arriving mid-protocol (task loaded, nothing unloaded yet)
// must tear every piece of secure state down: scratchpad lines
// scrubbed, core back to non-secure, Guarder cleared, model and chunk
// zeroed, task forgotten.
func TestTrampolineAbortMidProtocolLeavesNoSecureState(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id := submitSpec(t, w, prog, isolator.Topology{W: 1, H: 1})
	if rep := w.mon.Dispatch(Call{Func: FnLoad, Args: []uint64{uint64(id), 0, 1024, 0}}); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	task, err := w.mon.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	chunk, chunkSize := task.Chunk, task.ChunkSize
	// Plant a sentinel in the secure chunk so the zeroing is observable.
	w.machine.Phys().Write(chunk, []byte("secret working set"))
	core, _ := w.acc.Core(0)
	if core.Domain() != spad.SecureDomain {
		t.Fatal("precondition: core not secure after load")
	}

	if rep := w.mon.Dispatch(Call{Func: FnAbort, Args: []uint64{uint64(id)}}); rep.Err != nil {
		t.Fatal(rep.Err)
	}

	if core.Domain() != spad.NonSecure {
		t.Fatal("abort left the core in the secure domain")
	}
	if n := core.Scratchpad().CountDomain(spad.SecureDomain); n != 0 {
		t.Fatalf("abort left %d secure scratchpad lines", n)
	}
	if n := core.Accumulator().CountDomain(spad.SecureDomain); n != 0 {
		t.Fatalf("abort left %d secure accumulator lines", n)
	}
	for _, reg := range w.guarders[0].TransRegs() {
		if reg.Valid {
			t.Fatalf("abort left a valid translation register: %+v", reg)
		}
	}
	buf := make([]byte, chunkSize)
	w.machine.Phys().Read(chunk, buf)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("abort left chunk byte %d = %#x", i, b)
		}
	}
	if _, err := w.mon.Task(id); !errors.Is(err, ErrUnknownTask) {
		t.Fatal("aborted task still known")
	}
	if _, err := w.mon.ModelBytes(w.machine.SecureContext(), id); err == nil {
		t.Fatal("aborted task's model still readable")
	}
	if w.stats.Get(sim.CtrMonitorAborts) != 1 {
		t.Fatalf("aborts counted = %d", w.stats.Get(sim.CtrMonitorAborts))
	}
	// Double abort and abort-of-unknown fail closed.
	if rep := w.mon.Dispatch(Call{Func: FnAbort, Args: []uint64{uint64(id)}}); !errors.Is(rep.Err, ErrUnknownTask) {
		t.Fatalf("double abort: %v", rep.Err)
	}
	if rep := w.mon.Dispatch(Call{Func: FnAbort}); rep.Err == nil {
		t.Fatal("abort without args accepted")
	}
}

// Aborting a queued (never loaded) task frees its chunk and model
// without touching any core.
func TestAbortQueuedTask(t *testing.T) {
	w := bootWorld(t)
	id := submitSpec(t, w, testProgram(t), isolator.Topology{W: 1, H: 1})
	if w.mon.QueueLen() != 1 {
		t.Fatal("task not queued")
	}
	if err := w.mon.Abort(id); err != nil {
		t.Fatal(err)
	}
	if w.mon.QueueLen() != 0 {
		t.Fatal("aborted task still queued")
	}
	if _, err := w.mon.Task(id); !errors.Is(err, ErrUnknownTask) {
		t.Fatal("aborted task still known")
	}
}
