// Package monitor implements the paper's NPU Monitor (§IV-C, §V): the
// only NPU-related software in the TCB. It runs in the secure world
// (behind a PMP-protected domain in the prototype) and provides the
// shim modules — context setter, trusted allocator, code verifier,
// secure loader — plus the trampoline protocol that untrusted driver
// code uses to reach it, and the secure task queue.
package monitor

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
)

// The largest body of monitor code in the paper is cryptography (model
// decryption and code-integrity measurement). We use the stdlib's
// AES-256-GCM for sealing and SHA-256 for measurement; the key is
// provisioned by the model owner over the attested channel that secure
// boot's Root-of-Trust report establishes (simulated by handing the
// key to the monitor directly).

// KeySize is the sealing key size (AES-256).
const KeySize = 32

// SealModel encrypts a model blob under the owner's key, producing
// nonce||ciphertext. It is the *user-side* helper: the owner runs this
// before shipping the model to the untrusted driver.
func SealModel(key []byte, model []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("monitor: nonce: %w", err)
	}
	return append(nonce, gcm.Seal(nil, nonce, model, nil)...), nil
}

// OpenModel decrypts a sealed model inside the monitor. Tampered
// ciphertext fails authentication.
func OpenModel(key []byte, sealed []byte) ([]byte, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, fmt.Errorf("monitor: sealed blob too short")
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("monitor: model decryption failed: %w", err)
	}
	return pt, nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("monitor: key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Measure is the code-integrity hash used by the code verifier.
func Measure(blob []byte) [sha256.Size]byte { return sha256.Sum256(blob) }
