package monitor

// Tests for the state-transition coverage bitmap: every trampoline
// call must land exactly its (function, outcome) bit, the semantic
// Tr* bits must follow the task state machine, and the bitmap must be
// passive — observing it changes no monitor behavior and no cycle.

import (
	"testing"

	"repro/internal/mem"
)

func hasBit(m *Monitor, bit uint) bool { return m.TransitionBitmap()&(1<<bit) != 0 }

func TestTransitionBitmapDispatchOutcomes(t *testing.T) {
	w := bootWorld(t)
	if got := w.mon.TransitionBitmap(); got != 0 {
		t.Fatalf("fresh monitor bitmap = %#x, want 0", got)
	}

	// FnQueueLen succeeds: ok bit for FnQueueLen, nothing else in 0..15.
	if rep := w.mon.Dispatch(Call{Func: FnQueueLen}); rep.Err != nil {
		t.Fatal(rep.Err)
	}
	okBit := uint(2 * (FnQueueLen - FnSubmit))
	if !hasBit(w.mon, okBit) {
		t.Fatalf("queue-len ok bit %d not set: %#x", okBit, w.mon.TransitionBitmap())
	}
	if hasBit(w.mon, okBit+1) {
		t.Fatalf("queue-len err bit set on a successful call")
	}

	// FnAbort of an unknown task errors: err bit for FnAbort.
	if rep := w.mon.Dispatch(Call{Func: FnAbort, Args: []uint64{999}}); rep.Err == nil {
		t.Fatal("abort of unknown task succeeded")
	}
	errBit := uint(2*(FnAbort-FnSubmit)) + 1
	if !hasBit(w.mon, errBit) {
		t.Fatalf("abort err bit %d not set: %#x", errBit, w.mon.TransitionBitmap())
	}

	// An unknown FuncID lands no dispatch bit (it is outside the table).
	before := w.mon.TransitionBitmap()
	if rep := w.mon.Dispatch(Call{Func: FuncID(200)}); rep.Err == nil {
		t.Fatal("unknown func succeeded")
	}
	if got := w.mon.TransitionBitmap(); got != before {
		t.Fatalf("unknown func changed bitmap %#x -> %#x", before, got)
	}
}

func TestTransitionBitmapTaskLifecycle(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	if !hasBit(w.mon, TrSubmitVerified) {
		t.Fatalf("submit did not set TrSubmitVerified: %#x", w.mon.TransitionBitmap())
	}

	// Preempt before load is refused.
	if err := w.mon.Preempt(id); err == nil {
		t.Fatal("preempt of unloaded task succeeded")
	}
	if !hasBit(w.mon, TrPreemptRefused) || hasBit(w.mon, TrPreemptLoaded) {
		t.Fatalf("preempt-refused bits wrong: %#x", w.mon.TransitionBitmap())
	}

	if err := w.mon.Load(id, []int{0}, 0, 8); err != nil {
		t.Fatal(err)
	}
	if !hasBit(w.mon, TrLoadOK) {
		t.Fatalf("load did not set TrLoadOK: %#x", w.mon.TransitionBitmap())
	}
	if err := w.mon.Preempt(id); err != nil {
		t.Fatal(err)
	}
	if !hasBit(w.mon, TrPreemptLoaded) {
		t.Fatalf("preempt did not set TrPreemptLoaded: %#x", w.mon.TransitionBitmap())
	}

	// Abort of the (now queued again) task is the queued-abort bit.
	if err := w.mon.Abort(id); err != nil {
		t.Fatal(err)
	}
	if !hasBit(w.mon, TrAbortQueued) || hasBit(w.mon, TrAbortLoaded) {
		t.Fatalf("abort-queued bits wrong: %#x", w.mon.TransitionBitmap())
	}

	// A fresh task aborted while loaded lands the loaded-abort bit.
	id2, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Load(id2, []int{0}, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Abort(id2); err != nil {
		t.Fatal(err)
	}
	if !hasBit(w.mon, TrAbortLoaded) {
		t.Fatalf("loaded abort did not set TrAbortLoaded: %#x", w.mon.TransitionBitmap())
	}
}

func TestTransitionBitmapMapAndMeasurement(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)

	// Measurement mismatch.
	bad := prog.Measurement()
	bad[0] ^= 0xff
	if _, err := w.mon.Submit(TaskSpec{Program: prog, Expected: bad}); err == nil {
		t.Fatal("mismatched measurement accepted")
	}
	if !hasBit(w.mon, TrSubmitBadMeas) {
		t.Fatalf("TrSubmitBadMeas not set: %#x", w.mon.TransitionBitmap())
	}

	// Register the secure region so the map checks can classify targets.
	if err := w.machine.Phys().AddRegion(mem.Region{
		Name: "secure-dram", Base: secureBase, Size: secureSize, Owner: mem.Secure,
	}); err != nil {
		t.Fatal(err)
	}

	// Non-secure window into the secure region is refused and noted.
	if err := w.mon.MapNonSecure(0, 1, 0x4000, secureBase+0x1000, 0x1000); err == nil {
		t.Fatal("window into secure memory accepted")
	}
	if !hasBit(w.mon, TrMapSecureTarget) || hasBit(w.mon, TrMapOK) {
		t.Fatalf("map bits wrong: %#x", w.mon.TransitionBitmap())
	}

	// A legitimate window sets the ok bit.
	if err := w.mon.MapNonSecure(0, 1, 0x4000, 0x1000_0000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if !hasBit(w.mon, TrMapOK) {
		t.Fatalf("TrMapOK not set: %#x", w.mon.TransitionBitmap())
	}
}
