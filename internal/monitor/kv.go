package monitor

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/spad"
)

// KV-cache residency (§IV-B applied to a serving-shaped secret): a
// decode task's cached K/V vectors are tenant secrets that must stay
// resident across scheduler slices, so they cannot live in the lines
// the flush-on-switch scrubs. The monitor instead carves per-task KV
// windows out of a reserved scratchpad partition (the top quarter of
// the wordlines), claims them with a per-task domain tag >= 2 via the
// Claim secure instruction, and backs the full cache with a chunk of
// secure memory. The ID-bit rules then do the isolation work the flush
// used to do: a window tagged with task A's KV domain is unreadable by
// the normal world, by the generic secure domain, and by every other
// task's KV domain — so preemption may leave it in place untouched.
// Only the owner's FnUnload/FnAbort scrubs it (ResetSecure + DRAM
// zero), and the context-switch scrub walks *around* live KV windows
// so no task can destroy another's cache.

// Errors of the KV-residency path.
var (
	ErrKVExhausted = errors.New("monitor: kv partition exhausted")
	ErrKVConfig    = errors.New("monitor: ID state too narrow for kv domains")
	ErrKVDup       = errors.New("monitor: task already holds a kv region on this core")
)

// Transition bits of the KV state machine (see the Tr* block in
// monitor.go; these continue it).
const (
	TrKVAlloc   = 31 // kv window claimed for a loaded task
	TrKVRefused = 32 // kv allocation refused
	TrKVScrub   = 33 // kv window scrubbed on unload/abort
)

// KVRegion is one resident KV-cache window: a claimed scratchpad line
// range on one core, tagged with the task's private KV domain, plus
// the secure-memory chunk backing the full cache.
type KVRegion struct {
	Task   int
	Core   int
	Domain spad.DomainID
	// From/To is the claimed wordline window [From, To).
	From, To int
	// Chunk/Bytes is the DRAM backing store in secure memory.
	Chunk mem.PhysAddr
	Bytes uint64
}

// Lines is the window's wordline count.
func (r KVRegion) Lines() int { return r.To - r.From }

// kvPartitionStart is the first wordline of the KV partition: the top
// quarter of the scratchpad is reserved for resident caches.
func kvPartitionStart(totalLines int) int { return totalLines - totalLines/4 }

// kvOnCore returns the live KV windows on one core, ordered by window
// start (insertion order is creation order; sorting by From makes the
// first-fit and scrub walks independent of it).
func (m *Monitor) kvOnCore(core int) []*KVRegion {
	var out []*KVRegion
	for _, r := range m.kv {
		if r.Core == core {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].From < out[j].From })
	return out
}

// KVAlloc claims a resident KV window for a loaded task: `lines`
// wordlines in core `coreID`'s KV partition, tagged with a fresh
// per-task domain, plus `bytes` of secure memory backing the full
// cache. It is the monitor-mediated allocation path — the untrusted
// scheduler asks via the trampoline (FnKVAlloc) and learns only the
// assigned domain; refusals carry no detail beyond the failing check.
func (m *Monitor) KVAlloc(taskID, coreID, lines int, bytes uint64) (spad.DomainID, error) {
	m.call()
	task, ok := m.tasks[taskID]
	if !ok {
		m.note(TrKVRefused)
		return 0, m.reject(ErrUnknownTask)
	}
	if !task.Loaded {
		m.note(TrKVRefused)
		return 0, m.reject(fmt.Errorf("monitor: task %d is not loaded", taskID))
	}
	onCore := false
	for _, ci := range task.Cores {
		if ci == coreID {
			onCore = true
			break
		}
	}
	if !onCore {
		m.note(TrKVRefused)
		return 0, m.reject(fmt.Errorf("monitor: task %d is not loaded on core %d", taskID, coreID))
	}
	if lines <= 0 || bytes == 0 {
		m.note(TrKVRefused)
		return 0, m.reject(fmt.Errorf("monitor: bad kv request (%d lines, %d bytes)", lines, bytes))
	}
	core, err := m.acc.Core(coreID)
	if err != nil {
		m.note(TrKVRefused)
		return 0, m.reject(err)
	}
	sp := core.Scratchpad()

	// One window per (task, core): the cache grows in place.
	existing := m.kvOnCore(coreID)
	for _, r := range existing {
		if r.Task == taskID {
			m.note(TrKVRefused)
			return 0, m.reject(ErrKVDup)
		}
	}

	// A fresh per-task domain >= 2 (0 = normal world, 1 = the generic
	// secure domain the flush rules govern). The ID width bounds how
	// many caches one core can host.
	maxDomain := spad.DomainID(1<<sp.Config().IDBits - 1)
	if maxDomain < 2 {
		m.note(TrKVRefused)
		return 0, m.reject(ErrKVConfig)
	}
	var domain spad.DomainID
	for d := spad.DomainID(2); d <= maxDomain; d++ {
		used := false
		for _, r := range existing {
			if r.Domain == d {
				used = true
				break
			}
		}
		if !used {
			domain = d
			break
		}
	}
	if domain == 0 {
		m.note(TrKVRefused)
		return 0, m.reject(ErrKVExhausted)
	}

	// First-fit window inside the KV partition, avoiding live windows.
	total := sp.Lines()
	from := kvPartitionStart(total)
	for _, r := range existing {
		if from+lines <= r.From {
			break
		}
		if r.To > from {
			from = r.To
		}
	}
	if from+lines > total {
		m.note(TrKVRefused)
		return 0, m.reject(ErrKVExhausted)
	}

	// DRAM backing for the full cache, from the trusted allocator.
	chunk, err := m.alloc.Alloc(uint64(mem.PageAlignUp(mem.PhysAddr(bytes))), mem.PageSize)
	if err != nil {
		m.note(TrKVRefused)
		return 0, m.reject(err)
	}
	if err := sp.Claim(m.ctx, from, from+lines, domain); err != nil {
		_ = m.alloc.Free(chunk)
		m.note(TrKVRefused)
		return 0, m.reject(err)
	}
	m.kv = append(m.kv, &KVRegion{
		Task: taskID, Core: coreID, Domain: domain,
		From: from, To: from + lines, Chunk: chunk, Bytes: bytes,
	})
	m.note(TrKVAlloc)
	return domain, nil
}

// releaseKV scrubs and frees every KV window a task owns: the window's
// lines are zeroed and returned to the normal world, the DRAM backing
// is wiped before the chunk becomes allocatable again, and the task's
// KV domain is retired. This is the §IV-B flush contract applied to
// the cache — it runs only on the owner's Unload/Abort, never on a
// context switch.
func (m *Monitor) releaseKV(taskID int) error {
	kept := m.kv[:0]
	for _, r := range m.kv {
		if r.Task != taskID {
			kept = append(kept, r)
			continue
		}
		core, err := m.acc.Core(r.Core)
		if err != nil {
			return err
		}
		if err := core.Scratchpad().ResetSecure(m.ctx, r.From, r.To); err != nil {
			return err
		}
		m.machine.Phys().Zero(r.Chunk, uint64(mem.PageAlignUp(mem.PhysAddr(r.Bytes))))
		if err := m.alloc.Free(r.Chunk); err != nil {
			return err
		}
		m.note(TrKVScrub)
	}
	m.kv = kept
	return nil
}

// scrubSpadAround is the context-switch scratchpad scrub: ResetSecure
// over [from, to) on one core's scratchpad, stepping around every live
// KV window so resident caches — the evicted task's own and everyone
// else's — survive the switch. Their isolation does not depend on this
// walk: the windows stay tagged with private KV domains the §IV-B read
// rules already refuse.
func (m *Monitor) scrubSpadAround(sp *spad.Scratchpad, coreID, from, to int) error {
	cur := from
	for _, r := range m.kvOnCore(coreID) {
		if r.To <= cur || r.From >= to {
			continue
		}
		if r.From > cur {
			if err := sp.ResetSecure(m.ctx, cur, r.From); err != nil {
				return err
			}
		}
		if r.To > cur {
			cur = r.To
		}
	}
	if cur < to {
		return sp.ResetSecure(m.ctx, cur, to)
	}
	return nil
}

// KVRegions returns a snapshot of every live KV window (creation
// order). Tests and observability only; mutating the copies changes
// nothing.
func (m *Monitor) KVRegions() []KVRegion {
	out := make([]KVRegion, 0, len(m.kv))
	for _, r := range m.kv {
		out = append(out, *r)
	}
	return out
}

// KVRegionFor returns the task's KV window on one core.
func (m *Monitor) KVRegionFor(taskID, coreID int) (KVRegion, bool) {
	for _, r := range m.kv {
		if r.Task == taskID && r.Core == coreID {
			return *r, true
		}
	}
	return KVRegion{}, false
}
