package monitor

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/isolator"
	"repro/internal/mem"
	"repro/internal/npu"
	"repro/internal/taskimage"
)

// The trampoline is the narrow interface between the non-secure NPU
// driver and the NPU Monitor (§V): a function ID, arguments, and a
// shared-memory payload. The driver marshals a call; the monitor-side
// dispatcher validates and executes it. Keeping the boundary to plain
// data (no callbacks, no pointers into normal-world structures beyond
// the payload) is what keeps the TCB small.

// FuncID selects the monitor entry point.
type FuncID uint32

const (
	// FnSubmit submits a secure task spec for verification.
	FnSubmit FuncID = iota + 1
	// FnLoad loads a verified task onto cores.
	FnLoad
	// FnUnload tears a task down.
	FnUnload
	// FnQueueLen queries the secure queue depth.
	FnQueueLen
	// FnMapNonSecure programs a translation window for a non-secure
	// task (args: core, slot, vbase, pbase, size).
	FnMapNonSecure
	// FnSubmitImage submits a serialized task image (Shared carries
	// the raw taskimage bytes; the monitor decodes them defensively).
	FnSubmitImage
	// FnAbort fail-closed-aborts a secure task (scrub + teardown).
	FnAbort
	// FnPreempt evicts a loaded task with the mandatory flush and
	// ID-bit reassignment, keeping it resident for a later FnLoad.
	FnPreempt
	// FnKVAlloc claims a resident KV-cache window for a loaded task
	// (args: taskID, core, lines, bytes); Reply.Value is the assigned
	// KV domain. NOTE: outside the generic coverage-bit range
	// [FnSubmit, FnPreempt] — KV outcomes land on the semantic TrKV*
	// bits instead (kv.go).
	FnKVAlloc
)

func (f FuncID) String() string {
	switch f {
	case FnSubmit:
		return "submit"
	case FnLoad:
		return "load"
	case FnUnload:
		return "unload"
	case FnQueueLen:
		return "queue-len"
	case FnMapNonSecure:
		return "map-nonsecure"
	case FnSubmitImage:
		return "submit-image"
	case FnAbort:
		return "abort"
	case FnPreempt:
		return "preempt"
	case FnKVAlloc:
		return "kv-alloc"
	default:
		return fmt.Sprintf("func(%d)", uint32(f))
	}
}

// Call is one trampoline invocation. Args carries small scalars;
// Shared carries the bulk payload (sealed model bytes); Spec carries
// the program being submitted (in hardware this sits in the shared
// buffer too — we keep it typed for clarity).
type Call struct {
	Func   FuncID
	Args   []uint64
	Shared []byte
	// Submit-only fields.
	Program  *npu.Program
	Expected [sha256.Size]byte
	KeyID    string
	Topology isolator.Topology
}

// Reply is the monitor's answer.
type Reply struct {
	Value uint64
	Err   error
}

// Dispatch executes one trampoline call against the monitor. It is
// the single untrusted entry point. Every call lands one outcome bit
// in the transition-coverage bitmap: bit 2*(f-1) for FuncID f
// returning ok, bit 2*(f-1)+1 for f returning an error.
func (m *Monitor) Dispatch(c Call) Reply {
	rep := m.dispatch(c)
	if c.Func >= FnSubmit && c.Func <= FnPreempt {
		bit := uint(2 * (c.Func - FnSubmit))
		if rep.Err != nil {
			bit++
		}
		m.note(bit)
	}
	return rep
}

func (m *Monitor) dispatch(c Call) Reply {
	switch c.Func {
	case FnSubmit:
		id, err := m.Submit(TaskSpec{
			Program:     c.Program,
			Expected:    c.Expected,
			KeyID:       c.KeyID,
			SealedModel: c.Shared,
			Topology:    c.Topology,
		})
		return Reply{Value: uint64(id), Err: err}
	case FnLoad:
		if len(c.Args) < 3 {
			return Reply{Err: fmt.Errorf("monitor: load needs taskID, spadFrom, spadTo")}
		}
		taskID := int(c.Args[0])
		spadFrom := int(c.Args[1])
		spadTo := int(c.Args[2])
		cores := make([]int, 0, len(c.Args)-3)
		for _, a := range c.Args[3:] {
			cores = append(cores, int(a))
		}
		return Reply{Err: m.Load(taskID, cores, spadFrom, spadTo)}
	case FnUnload:
		if len(c.Args) < 1 {
			return Reply{Err: fmt.Errorf("monitor: unload needs taskID")}
		}
		return Reply{Err: m.Unload(int(c.Args[0]))}
	case FnAbort:
		if len(c.Args) < 1 {
			return Reply{Err: fmt.Errorf("monitor: abort needs taskID")}
		}
		return Reply{Err: m.Abort(int(c.Args[0]))}
	case FnPreempt:
		if len(c.Args) < 1 {
			return Reply{Err: fmt.Errorf("monitor: preempt needs taskID")}
		}
		return Reply{Err: m.Preempt(int(c.Args[0]))}
	case FnKVAlloc:
		if len(c.Args) < 4 {
			return Reply{Err: fmt.Errorf("monitor: kv-alloc needs taskID, core, lines, bytes")}
		}
		d, err := m.KVAlloc(int(c.Args[0]), int(c.Args[1]), int(c.Args[2]), c.Args[3])
		return Reply{Value: uint64(d), Err: err}
	case FnQueueLen:
		return Reply{Value: uint64(m.QueueLen())}
	case FnMapNonSecure:
		if len(c.Args) < 5 {
			return Reply{Err: fmt.Errorf("monitor: map-nonsecure needs core, slot, vbase, pbase, size")}
		}
		return Reply{Err: m.MapNonSecure(int(c.Args[0]), int(c.Args[1]),
			mem.VirtAddr(c.Args[2]), mem.PhysAddr(c.Args[3]), c.Args[4])}
	case FnSubmitImage:
		img, err := taskimage.Decode(c.Shared)
		if err != nil {
			return Reply{Err: m.reject(fmt.Errorf("monitor: task image rejected: %w", err))}
		}
		id, err := m.Submit(TaskSpec{
			Program:     img.Program,
			Expected:    img.Expected,
			KeyID:       img.KeyID,
			SealedModel: img.SealedModel,
			Topology:    img.Topology,
		})
		return Reply{Value: uint64(id), Err: err}
	default:
		return Reply{Err: ErrBadFunc}
	}
}
