package monitor

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/spad"
)

// Preempt is the §IV-B context-switch teardown without the task's
// destruction: scrub, ID reassignment, register invalidation — but the
// task stays resident and reloadable.
func TestPreemptScrubsAndKeepsTaskResident(t *testing.T) {
	w := bootWorld(t)
	prog := testProgram(t)
	id, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Load(id, []int{0}, 0, 64); err != nil {
		t.Fatal(err)
	}
	core, err := w.acc.Core(0)
	if err != nil {
		t.Fatal(err)
	}
	// The running secure task leaves bytes in its scratchpad lines.
	secret := []byte("live-partial-sums")
	if err := core.Scratchpad().Write(spad.SecureDomain, 5, secret[:core.Scratchpad().LineBytes()]); err != nil {
		t.Fatal(err)
	}

	if err := w.mon.Preempt(id); err != nil {
		t.Fatal(err)
	}

	// Flush-on-switch: the line is invalid, the core is back in the
	// normal world, and every translation register is cleared.
	if core.Scratchpad().LineValid(5) {
		t.Fatal("secure line survived preemption")
	}
	if core.Domain() != spad.NonSecure {
		t.Fatalf("core domain = %d after preempt", core.Domain())
	}
	for i, r := range w.guarders[0].TransRegs() {
		if r.Valid {
			t.Fatalf("translation register %d still valid after preempt", i)
		}
	}
	buf := make([]byte, core.Scratchpad().LineBytes())
	if err := core.Scratchpad().Read(spad.NonSecure, 5, buf); err == nil && bytes.Contains(buf, secret[:4]) {
		t.Fatal("preempted task's bytes readable from the normal world")
	}

	// The task is requeued and reloadable without resubmission.
	task, err := w.mon.Task(id)
	if err != nil {
		t.Fatal(err)
	}
	if task.Loaded {
		t.Fatal("task still marked loaded")
	}
	if w.mon.QueueLen() != 1 {
		t.Fatalf("queue len = %d, want 1 (requeued)", w.mon.QueueLen())
	}
	if err := w.mon.Load(id, []int{1}, 0, 64); err != nil {
		t.Fatalf("reload after preempt: %v", err)
	}
	if err := w.mon.Unload(id); err != nil {
		t.Fatal(err)
	}
}

func TestPreemptRejectsUnknownOrUnloaded(t *testing.T) {
	w := bootWorld(t)
	if err := w.mon.Preempt(42); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task: %v", err)
	}
	prog := testProgram(t)
	id, err := w.mon.Submit(TaskSpec{Program: prog, Expected: prog.Measurement()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mon.Preempt(id); err == nil {
		t.Fatal("preempt of a never-loaded task accepted")
	}
	rep := w.mon.Dispatch(Call{Func: FnPreempt})
	if rep.Err == nil {
		t.Fatal("FnPreempt with no args accepted")
	}
}
