package graph

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzGraphIR drives the untrusted front door: arbitrary bytes must
// never panic anywhere in parse → validate → lower, and any input the
// pipeline ACCEPTS must produce a Validate-clean workload with at
// least one GEMM — the invariant the serving layer relies on when it
// forwards an inline graph to the scheduler.
func FuzzGraphIR(f *testing.F) {
	// Committed model files are the structured seed corpus.
	files, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no seed corpus in testdata/")
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	// Hand-written near-miss seeds steer mutation toward validator edges.
	f.Add([]byte(`{"ir":1,"name":"x","inputs":[{"name":"in","shape":[1,3,8,8]}],` +
		`"nodes":[{"name":"c","op":"Conv","inputs":["in"],"attrs":{"filters":4,"kernel":3}}],"outputs":["c"]}`))
	f.Add([]byte(`{"ir":1,"name":"x","inputs":[{"name":"t","shape":[8,64]}],` +
		`"nodes":[{"name":"a","op":"Attention","inputs":["t"],"attrs":{"heads":4,"ctx":32}}],"outputs":["a"]}`))
	f.Add([]byte(`{"ir":1,"name":"cyc","inputs":[{"name":"t","shape":[8,8]}],` +
		`"nodes":[{"name":"a","op":"Relu","inputs":["b"]},{"name":"b","op":"Relu","inputs":["a"]}],"outputs":["a"]}`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := LowerBytes(data)
		if err != nil {
			return // rejection is the common, correct case
		}
		if err := w.Validate(); err != nil {
			t.Fatalf("accepted graph lowered to invalid workload: %v", err)
		}
		gemms := 0
		for _, l := range w.Layers {
			gemms += len(l.GEMMs)
		}
		if gemms == 0 {
			t.Fatal("accepted graph lowered to zero GEMMs")
		}
	})
}
