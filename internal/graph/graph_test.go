package graph

import (
	"strings"
	"testing"
)

// tiny returns a minimal valid graph for mutation in rejection tests.
func tiny() *Model {
	return &Model{
		IR: IRVersion, Name: "tiny",
		Inputs: []Tensor{{Name: "in", Shape: []int{1, 3, 8, 8}}},
		Nodes: []Node{
			nconv("c1", "in", 4, 3, 1, 1),
			nfc("fc", "c1", 10),
		},
		Outputs: []string{"fc"},
	}
}

func mustReject(t *testing.T, m *Model, wantSub string) {
	t.Helper()
	err := m.Validate()
	if err == nil {
		t.Fatalf("validated, want error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not mention %q", err, wantSub)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"unknown top field":  `{"ir":1,"name":"x","bogus":1}`,
		"unknown node field": `{"ir":1,"name":"x","nodes":[{"name":"n","op":"FC","wat":2}]}`,
		"unknown attr":       `{"ir":1,"name":"x","nodes":[{"name":"n","op":"FC","attrs":{"outt":4}}]}`,
		"trailing data":      `{"ir":1,"name":"x"} {"again":true}`,
		"not json":           `hello`,
		"wrong shape type":   `{"ir":1,"inputs":[{"name":"t","shape":"big"}]}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: parsed", label)
		}
	}
	if _, err := Parse(make([]byte, MaxIRBytes+1)); err == nil {
		t.Error("oversized document parsed")
	}
	// Valid JSON parses; validation is a separate pass.
	m, err := Parse([]byte(`{"ir":99,"name":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	if m.IR != 99 {
		t.Fatal("ir field lost")
	}
}

func TestReadBounded(t *testing.T) {
	if _, err := Read(strings.NewReader(strings.Repeat(" ", MaxIRBytes+2))); err == nil {
		t.Fatal("oversized reader accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	t.Run("version", func(t *testing.T) {
		m := tiny()
		m.IR = 2
		mustReject(t, m, "IR version")
	})
	t.Run("no inputs", func(t *testing.T) {
		m := tiny()
		m.Inputs = nil
		mustReject(t, m, "no inputs")
	})
	t.Run("no nodes", func(t *testing.T) {
		m := tiny()
		m.Nodes = nil
		mustReject(t, m, "no nodes")
	})
	t.Run("dangling input", func(t *testing.T) {
		m := tiny()
		m.Nodes[0].Inputs = []string{"ghost"}
		mustReject(t, m, "dangling")
	})
	t.Run("cycle", func(t *testing.T) {
		m := tiny()
		m.Nodes = []Node{
			{Name: "a", OpKind: OpRelu, Inputs: []string{"b"}},
			{Name: "b", OpKind: OpRelu, Inputs: []string{"a"}},
			nconv("c1", "in", 4, 3, 1, 1),
		}
		m.Outputs = []string{"c1"}
		mustReject(t, m, "cycle")
	})
	t.Run("self cycle", func(t *testing.T) {
		m := tiny()
		m.Nodes[1].Inputs = []string{"fc"}
		mustReject(t, m, "cycle")
	})
	t.Run("duplicate node", func(t *testing.T) {
		m := tiny()
		m.Nodes[1].Name = "c1"
		mustReject(t, m, "duplicate")
	})
	t.Run("node shadows input", func(t *testing.T) {
		m := tiny()
		m.Nodes[0].Name = "in"
		mustReject(t, m, "shadows")
	})
	t.Run("unknown op", func(t *testing.T) {
		m := tiny()
		m.Nodes[0].OpKind = "Convolve"
		mustReject(t, m, "unknown op")
	})
	t.Run("unconsumed attr", func(t *testing.T) {
		m := tiny()
		m.Nodes[1].Attrs.Kernel = 3 // FC does not take kernel
		mustReject(t, m, "not consumed")
	})
	t.Run("kernel does not fit", func(t *testing.T) {
		m := tiny()
		m.Nodes[0].Attrs.Kernel = 99
		mustReject(t, m, "does not fit")
	})
	t.Run("bad dim", func(t *testing.T) {
		m := tiny()
		m.Inputs[0].Shape = []int{1, 3, 0, 8}
		mustReject(t, m, "out of range")
	})
	t.Run("bad rank", func(t *testing.T) {
		m := tiny()
		m.Inputs[0].Shape = []int{3, 8, 8}
		mustReject(t, m, "2-D or 4-D")
	})
	t.Run("fc on batch>1", func(t *testing.T) {
		m := &Model{
			IR: IRVersion, Name: "x",
			Inputs:  []Tensor{{Name: "in", Shape: []int{4, 16}}},
			Nodes:   []Node{nfc("fc", "in", 8)},
			Outputs: []string{"fc"},
		}
		mustReject(t, m, "batch 1")
	})
	t.Run("matmul inner mismatch", func(t *testing.T) {
		m := &Model{
			IR: IRVersion, Name: "x",
			Inputs: []Tensor{
				{Name: "a", Shape: []int{4, 16}},
				{Name: "b", Shape: []int{8, 4}},
			},
			Nodes:   []Node{{Name: "mm", OpKind: OpMatMul, Inputs: []string{"a", "b"}}},
			Outputs: []string{"mm"},
		}
		mustReject(t, m, "inner dims")
	})
	t.Run("add shape mismatch", func(t *testing.T) {
		m := tiny()
		m.Nodes = append(m.Nodes, Node{Name: "bad", OpKind: OpAdd, Inputs: []string{"c1", "in"}})
		mustReject(t, m, "mismatch")
	})
	t.Run("attention indivisible heads", func(t *testing.T) {
		m := &Model{
			IR: IRVersion, Name: "x",
			Inputs:  []Tensor{{Name: "t", Shape: []int{8, 100}}},
			Nodes:   []Node{{Name: "a", OpKind: OpAttention, Inputs: []string{"t"}, Attrs: Attrs{Heads: 3}}},
			Outputs: []string{"a"},
		}
		mustReject(t, m, "divisible")
	})
	t.Run("no gemm work", func(t *testing.T) {
		m := tiny()
		m.Nodes = []Node{{Name: "r", OpKind: OpRelu, Inputs: []string{"in"}}}
		m.Outputs = []string{"r"}
		mustReject(t, m, "no GEMM work")
	})
	t.Run("scattered layer", func(t *testing.T) {
		m := tiny()
		m.Nodes = []Node{
			nconvL("a", "in", "l1", 4, 3, 1, 1),
			nconvL("b", "a", "l2", 4, 3, 1, 1),
			nconvL("c", "b", "l1", 4, 3, 1, 1),
		}
		m.Outputs = []string{"c"}
		mustReject(t, m, "not contiguous")
	})
	t.Run("undefined output", func(t *testing.T) {
		m := tiny()
		m.Outputs = []string{"nope"}
		mustReject(t, m, "not a defined tensor")
	})
	t.Run("bad mode", func(t *testing.T) {
		m := tiny()
		m.Nodes = append(m.Nodes[:1], Node{Name: "r", OpKind: OpReduce,
			Inputs: []string{"c1"}, Attrs: Attrs{Mode: "median"}})
		m.Outputs = []string{"r"}
		mustReject(t, m, "mode")
	})
	t.Run("nil model", func(t *testing.T) {
		var m *Model
		if err := m.Validate(); err == nil {
			t.Fatal("nil model validated")
		}
	})
}

func TestShapesInference(t *testing.T) {
	m := tiny()
	shapes, err := m.Shapes()
	if err != nil {
		t.Fatal(err)
	}
	if got := shapes["c1"]; !got.equal(Shape{1, 4, 8, 8}) {
		t.Fatalf("c1 shape %v", got)
	}
	if got := shapes["fc"]; !got.equal(Shape{1, 10}) {
		t.Fatalf("fc shape %v", got)
	}
}

// Forward references are legal: node order in the file is layout, not
// dataflow order (as long as the graph is acyclic and layers stay
// contiguous).
func TestForwardReference(t *testing.T) {
	m := &Model{
		IR: IRVersion, Name: "fwd",
		Inputs: []Tensor{{Name: "in", Shape: []int{1, 3, 8, 8}}},
		Nodes: []Node{
			{Name: "late", OpKind: OpRelu, Inputs: []string{"early"}},
			nconv("early", "in", 4, 3, 1, 1),
		},
		Outputs: []string{"late"},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttentionExpansion(t *testing.T) {
	m := &Model{
		IR: IRVersion, Name: "attn",
		Inputs: []Tensor{{Name: "t", Shape: []int{16, 64}}},
		Nodes: []Node{
			{Name: "a", OpKind: OpAttention, Inputs: []string{"t"}, Attrs: Attrs{Heads: 4}},
		},
		Outputs: []string{"a"},
	}
	w, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	gemms := w.Layers[0].GEMMs
	// 3 projections + 4 heads x 2 + out projection.
	if len(gemms) != 3+8+1 {
		t.Fatalf("%d GEMMs", len(gemms))
	}
	if gemms[0].Name != "a_qproj" || gemms[0].M != 16 || gemms[0].K != 64 || gemms[0].N != 64 {
		t.Fatalf("qproj %+v", gemms[0])
	}
	// Self-attention: scores N = seq, context naming.
	if gemms[3].Name != "a_scores_h0" || gemms[3].N != 16 {
		t.Fatalf("scores %+v", gemms[3])
	}
	if gemms[4].Name != "a_context_h0" || gemms[4].K != 16 || gemms[4].N != 16 {
		t.Fatalf("context %+v", gemms[4])
	}

	// Decode flavor: ctx overrides the attended length and renames the
	// second per-head GEMM.
	m.Nodes[0].Attrs.Ctx = 96
	w, err = Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	gemms = w.Layers[0].GEMMs
	if gemms[3].N != 96 {
		t.Fatalf("decode scores %+v", gemms[3])
	}
	if gemms[4].Name != "a_ctx_h0" || gemms[4].K != 96 {
		t.Fatalf("decode ctx %+v", gemms[4])
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, c := range irCases() {
		buf, err := Marshal(c.model())
		if err != nil {
			t.Fatal(err)
		}
		m, err := Parse(buf)
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		again, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(again) {
			t.Fatalf("%s: marshal not stable", c.file)
		}
	}
}
