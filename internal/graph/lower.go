package graph

import (
	"fmt"

	"repro/internal/workload"
)

// Lower validates a model and compiles it to a GEMM workload using the
// paper's lowering rules (§VI workloads): im2col for convolutions, the
// low-efficiency systolic mapping for depthwise convolutions, batch-1
// GEMMs for FC layers, and the per-head projection/score/context
// expansion for attention. Nodes sharing a layer tag pool their GEMMs
// into one scheduling layer; shape-only nodes (Pool, Reduce,
// element-wise, Concat) contribute no GEMMs, and a layer left with
// none is dropped.
//
// The result is byte-identical (workload.Canonical) to the hand-coded
// constructors for every committed testdata model — the drift test in
// this package pins that equivalence.
func Lower(m *Model) (workload.Workload, error) {
	shapes, err := m.Shapes()
	if err != nil {
		return workload.Workload{}, err
	}

	w := workload.Workload{Name: m.Name}
	var cur *workload.Layer
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if n.OpKind == OpDecode {
			// A Decode node is multi-layer by construction: the prefill
			// pass plus every decode step, concatenated exactly as the
			// workload builder renders them (token boundaries become
			// layer boundaries). Layer names are prefixed with the node
			// so two Decode nodes in one graph cannot collide.
			spec, err := n.decodeSpec(shapes[n.Inputs[0]])
			if err != nil {
				return workload.Workload{}, err
			}
			for _, l := range spec.Flat().Layers {
				w.Layers = append(w.Layers, workload.Layer{
					Name: n.Name + "_" + l.Name, GEMMs: l.GEMMs,
				})
			}
			cur = nil
			continue
		}
		tag := n.layerTag()
		if cur == nil || cur.Name != tag {
			w.Layers = append(w.Layers, workload.Layer{Name: tag})
			cur = &w.Layers[len(w.Layers)-1]
		}
		gemms, err := lowerNode(n, shapes)
		if err != nil {
			return workload.Workload{}, err
		}
		cur.GEMMs = append(cur.GEMMs, gemms...)
	}

	// Drop layers that held only shape-only nodes.
	kept := w.Layers[:0]
	for _, l := range w.Layers {
		if len(l.GEMMs) > 0 {
			kept = append(kept, l)
		}
	}
	w.Layers = kept

	if err := w.Validate(); err != nil {
		return workload.Workload{}, fmt.Errorf("graph: lowered workload invalid: %w", err)
	}
	return w, nil
}

// lowerNode emits the GEMMs one node compiles to. Shapes were already
// inferred, so every access here is total.
func lowerNode(n *Node, shapes map[string]Shape) ([]workload.GEMM, error) {
	switch n.OpKind {
	case OpConv:
		in := shapes[n.Inputs[0]]
		stride := n.Attrs.Stride
		if stride == 0 {
			stride = 1
		}
		return []workload.GEMM{workload.Conv(
			n.Name, in[2], in[3], in[1], n.Attrs.Filters, n.Attrs.Kernel, stride, n.Attrs.Pad,
		)}, nil

	case OpDWConv:
		in := shapes[n.Inputs[0]]
		stride := n.Attrs.Stride
		if stride == 0 {
			stride = 1
		}
		return []workload.GEMM{workload.DWConv(
			n.Name, in[2], in[3], in[1], n.Attrs.Kernel, stride, n.Attrs.Pad,
		)}, nil

	case OpFC:
		in := shapes[n.Inputs[0]]
		return []workload.GEMM{workload.FC(n.Name, in.elems(), n.Attrs.Out)}, nil

	case OpGemm:
		in := shapes[n.Inputs[0]]
		return []workload.GEMM{workload.MatMul(n.Name, in[0], in[1], n.Attrs.Out)}, nil

	case OpMatMul:
		a, b := shapes[n.Inputs[0]], shapes[n.Inputs[1]]
		return []workload.GEMM{workload.MatMul(n.Name, a[0], a[1], b[1])}, nil

	case OpAttention:
		in := shapes[n.Inputs[0]]
		seq, hidden := in[0], in[1]
		heads := n.Attrs.Heads
		headDim := hidden / heads
		// Self-attention scores/context GEMMs run over the input's own
		// sequence; a non-zero ctx models an autoregressive decode step
		// attending over a KV cache, and the "_ctx_" naming (vs
		// "_context_") keeps the two regimes distinct in traces.
		ctxLen := seq
		ctxName := "context"
		if n.Attrs.Ctx > 0 {
			ctxLen = n.Attrs.Ctx
			ctxName = "ctx"
		}
		gemms := make([]workload.GEMM, 0, 4+2*heads)
		for _, proj := range []string{"q", "k", "v"} {
			gemms = append(gemms, workload.GEMM{
				Name: fmt.Sprintf("%s_%sproj", n.Name, proj), M: seq, K: hidden, N: hidden,
			})
		}
		for h := 0; h < heads; h++ {
			gemms = append(gemms,
				workload.GEMM{Name: fmt.Sprintf("%s_scores_h%d", n.Name, h), M: seq, K: headDim, N: ctxLen},
				workload.GEMM{Name: fmt.Sprintf("%s_%s_h%d", n.Name, ctxName, h), M: seq, K: ctxLen, N: headDim},
			)
		}
		gemms = append(gemms, workload.GEMM{Name: n.Name + "_outproj", M: seq, K: hidden, N: hidden})
		return gemms, nil

	case OpPool, OpReduce, OpAdd, OpMul, OpRelu, OpSoftmax, OpConcat:
		return nil, nil
	}
	return nil, fmt.Errorf("graph: node %q: unknown op %q", n.Name, n.OpKind)
}
