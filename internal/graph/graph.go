// Package graph is the model front end of the reproduction: a small
// JSON operator-graph IR that compiles down to the same layer-accurate
// GEMM workloads (internal/workload) the paper's six §VI evaluation
// models are hand-written as. The front end itself is beyond the paper
// — it exists so arbitrary user models can flow through the simulator,
// the scheduler, and the serving daemon instead of only the hand-
// ported set — but its lowering rules are exactly the paper's: every
// convolution becomes its im2col GEMM, depthwise convolutions carry
// the systolic-array efficiency penalty, attention expands into the
// per-head projection/score/context GEMMs, and pooling/element-wise
// ops shape the tensor flow without contributing GEMM work.
//
// The pipeline is Parse → Validate (shape inference, dangling-input
// and cycle detection, dim checks) → Lower, and it fails closed: the
// parser rejects unknown fields and ops, validation rejects any graph
// whose tensor flow does not type-check, and only a Validate-clean
// graph reaches the lowering. The canonical digest of the lowered
// workload (workload.Digest) rides into the compiled program's
// measurement, so an attestation quote over a graph-submitted secure
// task binds the exact compiled graph.
package graph

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

// Format bounds. The parser and validator enforce these caps before
// any quadratic work happens, so hostile IR cannot balloon memory.
const (
	// IRVersion is the only accepted value of the "ir" field.
	IRVersion = 1
	// MaxIRBytes caps the serialized IR document.
	MaxIRBytes = 4 << 20
	// MaxNodes caps the node count of one graph.
	MaxNodes = 1 << 14
	// MaxNameLen caps model, tensor, node, and layer names.
	MaxNameLen = 128
	// MaxDim caps any single tensor dimension (and kernel/stride/pad/
	// attribute magnitudes), keeping every lowered GEMM product well
	// inside int64.
	MaxDim = 1 << 20
	// MaxHeads caps an attention node's head count.
	MaxHeads = 1 << 10
)

// Op names the operator set. Gemm/MatMul/Conv/DWConv/FC/Attention
// lower to GEMMs; Pool/Reduce and the element-wise ops (Add, Mul,
// Relu, Softmax) and Concat shape the tensor flow only.
type Op string

// The operator set.
const (
	OpGemm      Op = "Gemm"
	OpMatMul    Op = "MatMul"
	OpConv      Op = "Conv"
	OpDWConv    Op = "DWConv"
	OpFC        Op = "FC"
	OpAttention Op = "Attention"
	OpDecode    Op = "Decode"
	OpPool      Op = "Pool"
	OpReduce    Op = "Reduce"
	OpAdd       Op = "Add"
	OpMul       Op = "Mul"
	OpRelu      Op = "Relu"
	OpSoftmax   Op = "Softmax"
	OpConcat    Op = "Concat"
)

// ops maps every known operator to whether it produces GEMM work.
var ops = map[Op]bool{
	OpGemm: true, OpMatMul: true, OpConv: true, OpDWConv: true,
	OpFC: true, OpAttention: true, OpDecode: true,
	OpPool: false, OpReduce: false, OpAdd: false, OpMul: false,
	OpRelu: false, OpSoftmax: false, OpConcat: false,
}

// Attrs carries the per-op scalar attributes. Zero values mean "use
// the op's default" (stride 1, pad 0, self-attention context).
// Unknown JSON fields are rejected at parse time; a set attribute the
// node's op does not consume is rejected by Validate, so a typo'd
// graph never silently describes a different network.
type Attrs struct {
	// Filters is Conv's output-channel count.
	Filters int `json:"filters,omitempty"`
	// Kernel is the square kernel size of Conv/DWConv/Pool.
	Kernel int `json:"kernel,omitempty"`
	// Stride defaults to 1 for Conv/DWConv and to Kernel for Pool.
	Stride int `json:"stride,omitempty"`
	// Pad is the symmetric spatial padding (default 0).
	Pad int `json:"pad,omitempty"`
	// Out is the output width of FC/Gemm.
	Out int `json:"out,omitempty"`
	// Heads is Attention's head count.
	Heads int `json:"heads,omitempty"`
	// Ctx, when non-zero, is Attention's cached-context length (an
	// autoregressive decode step); zero means self-attention over the
	// input's own sequence length.
	Ctx int `json:"ctx,omitempty"`
	// Steps is Decode's autoregressive step count after prefill.
	Steps int `json:"steps,omitempty"`
	// KV, when non-zero, declares Decode's KV-cache capacity in context
	// tokens; it must cover the prompt plus every step. Zero means
	// exactly prompt+steps.
	KV int `json:"kv,omitempty"`
	// FFN is Decode's feed-forward width (default 4x hidden).
	FFN int `json:"ffn,omitempty"`
	// Layers is Decode's transformer depth (default 1).
	Layers int `json:"layers,omitempty"`
	// Mode selects the Reduce/Pool flavor ("mean" or "max"); timing
	// is identical, so it is descriptive only.
	Mode string `json:"mode,omitempty"`
}

// Tensor declares a named graph input with an explicit shape:
// [1, features] or [seq, hidden] for 2-D tensors, [n, c, h, w] for
// 4-D ones.
type Tensor struct {
	Name  string `json:"name"`
	Shape []int  `json:"shape"`
}

// Node is one operator application. Every node defines exactly one
// output tensor named after the node, so dataflow edges are plain
// name references.
type Node struct {
	Name   string   `json:"name"`
	OpKind Op       `json:"op"`
	Inputs []string `json:"inputs"`
	// Layer tags the scheduling-boundary layer this node's GEMMs join;
	// empty means the node is its own layer. Nodes sharing a tag must
	// be contiguous in file order — layers are the flush/scheduling
	// unit, so scattering one across the stream is rejected.
	Layer string `json:"layer,omitempty"`
	Attrs Attrs  `json:"attrs,omitempty"`
}

// Model is one parsed IR document.
type Model struct {
	IR      int      `json:"ir"`
	Name    string   `json:"name"`
	Inputs  []Tensor `json:"inputs"`
	Nodes   []Node   `json:"nodes"`
	Outputs []string `json:"outputs"`
}

// Parse decodes an IR document, rejecting unknown fields, trailing
// data, and oversized documents. Parsing alone does not make the
// graph usable — run Validate (or Lower, which validates) next.
func Parse(data []byte) (*Model, error) {
	if len(data) > MaxIRBytes {
		return nil, fmt.Errorf("graph: IR document exceeds %d bytes", MaxIRBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Model
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("graph: parsing IR: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("graph: trailing data after IR document")
	}
	return &m, nil
}

// Read parses an IR document from r (bounded by MaxIRBytes).
func Read(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxIRBytes+1))
	if err != nil {
		return nil, fmt.Errorf("graph: reading IR: %w", err)
	}
	return Parse(data)
}

// Marshal serializes a model as indented canonical JSON (the format
// committed under testdata/ and accepted back by Parse).
func Marshal(m *Model) ([]byte, error) {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// LoadFile reads, validates, and lowers one IR file.
func LoadFile(path string) (workload.Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return workload.Workload{}, err
	}
	return LowerBytes(data)
}

// LowerBytes is the one-call front door: parse, validate, and lower an
// IR document to a workload. Anything wrong — syntax, unknown fields,
// shape errors, cycles — comes back as an error; the serving layer
// maps every one of them to a 4xx.
func LowerBytes(data []byte) (workload.Workload, error) {
	m, err := Parse(data)
	if err != nil {
		return workload.Workload{}, err
	}
	return Lower(m)
}
