package graph

import (
	"fmt"

	"repro/internal/workload"
)

// The IR builders below mirror the hand-coded constructors in
// internal/workload; TestWriteTestdata serializes them into the
// committed testdata/ files and TestIRModelsMatchConstructors proves
// the committed files lower byte-identical to the constructors.

type irCase struct {
	file  string
	model func() *Model
	want  func() workload.Workload
}

func irCases() []irCase {
	return []irCase{
		{"alexnet.json", alexNetIR, workload.AlexNet},
		{"yololite.json", yoloLiteIR, workload.YOLOLite},
		{"mobilenet.json", mobileNetIR, workload.MobileNet},
		{"resnet.json", resNetIR, workload.ResNet},
		{"googlenet.json", googleNetIR, workload.GoogleNet},
		{"bert.json", bertIR, func() workload.Workload { return workload.BERT(workload.BERTBase) }},
		{"vgg16.json", vgg16IR, workload.VGG16},
		{"gpt-decode.json", gptDecodeIR, workload.GPTSmallDecode},
		{"dlrm.json", dlrmIR, workload.DLRM},
	}
}

// Node shorthands. A zero stride means "op default"; the builders pass
// the constructor's explicit values so the JSON shows real configs.

func nconv(name, in string, filters, kernel, stride, pad int) Node {
	return Node{Name: name, OpKind: OpConv, Inputs: []string{in},
		Attrs: Attrs{Filters: filters, Kernel: kernel, Stride: stride, Pad: pad}}
}

func nconvL(name, in, layer string, filters, kernel, stride, pad int) Node {
	n := nconv(name, in, filters, kernel, stride, pad)
	n.Layer = layer
	return n
}

func npool(name, in string, kernel, stride, pad int) Node {
	return Node{Name: name, OpKind: OpPool, Inputs: []string{in},
		Attrs: Attrs{Kernel: kernel, Stride: stride, Pad: pad, Mode: "max"}}
}

func nfc(name, in string, out int) Node {
	return Node{Name: name, OpKind: OpFC, Inputs: []string{in}, Attrs: Attrs{Out: out}}
}

func alexNetIR() *Model {
	return &Model{
		IR: IRVersion, Name: "alexnet",
		Inputs: []Tensor{{Name: "image", Shape: []int{1, 3, 227, 227}}},
		Nodes: []Node{
			nconv("conv1", "image", 96, 11, 4, 0),
			npool("pool1", "conv1", 3, 2, 0),
			nconv("conv2", "pool1", 256, 5, 1, 2),
			npool("pool2", "conv2", 3, 2, 0),
			nconv("conv3", "pool2", 384, 3, 1, 1),
			nconv("conv4", "conv3", 384, 3, 1, 1),
			nconv("conv5", "conv4", 256, 3, 1, 1),
			npool("pool5", "conv5", 3, 2, 0),
			nfc("fc6", "pool5", 4096),
			nfc("fc7", "fc6", 4096),
			nfc("fc8", "fc7", 1000),
		},
		Outputs: []string{"fc8"},
	}
}

func yoloLiteIR() *Model {
	return &Model{
		IR: IRVersion, Name: "yololite",
		Inputs: []Tensor{{Name: "image", Shape: []int{1, 3, 224, 224}}},
		Nodes: []Node{
			nconv("conv1", "image", 16, 3, 1, 1),
			npool("pool1", "conv1", 2, 2, 0),
			nconv("conv2", "pool1", 32, 3, 1, 1),
			npool("pool2", "conv2", 2, 2, 0),
			nconv("conv3", "pool2", 64, 3, 1, 1),
			npool("pool3", "conv3", 2, 2, 0),
			nconv("conv4", "pool3", 128, 3, 1, 1),
			npool("pool4", "conv4", 2, 2, 0),
			nconv("conv5", "pool4", 128, 3, 1, 1),
			nconv("conv6", "conv5", 256, 3, 1, 1),
			npool("pool6", "conv6", 2, 2, 0),
			nconv("conv7", "pool6", 125, 1, 1, 0),
		},
		Outputs: []string{"conv7"},
	}
}

func mobileNetIR() *Model {
	nodes := []Node{nconv("conv1", "image", 32, 3, 2, 1)}
	type stage struct{ cout, stride int }
	stages := []stage{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
		{1024, 2}, {1024, 1},
	}
	prev := "conv1"
	for i, s := range stages {
		name := fmt.Sprintf("dsconv%d", i+2)
		dw := Node{Name: name + "_dw", OpKind: OpDWConv, Inputs: []string{prev},
			Layer: name, Attrs: Attrs{Kernel: 3, Stride: s.stride, Pad: 1}}
		pw := nconvL(name+"_pw", name+"_dw", name, s.cout, 1, 1, 0)
		nodes = append(nodes, dw, pw)
		prev = name + "_pw"
	}
	nodes = append(nodes,
		Node{Name: "gap", OpKind: OpReduce, Inputs: []string{prev}, Attrs: Attrs{Mode: "mean"}},
		nfc("fc", "gap", 1000),
	)
	return &Model{
		IR: IRVersion, Name: "mobilenet",
		Inputs:  []Tensor{{Name: "image", Shape: []int{1, 3, 224, 224}}},
		Nodes:   nodes,
		Outputs: []string{"fc"},
	}
}

func resNetIR() *Model {
	nodes := []Node{
		nconv("conv1", "image", 64, 7, 2, 3),
		npool("pool1", "conv1", 3, 2, 1),
	}
	type stage struct{ blocks, mid, out int }
	stages := []stage{{3, 64, 256}, {4, 128, 512}, {6, 256, 1024}, {3, 512, 2048}}
	prev := "pool1"
	for si, s := range stages {
		if si > 0 {
			down := fmt.Sprintf("down%d", si+2)
			nodes = append(nodes, npool(down, prev, 2, 2, 0))
			prev = down
		}
		for b := 0; b < s.blocks; b++ {
			name := fmt.Sprintf("res%d_%d", si+2, b+1)
			nodes = append(nodes,
				nconvL(name+"_1x1a", prev, name, s.mid, 1, 1, 0),
				nconvL(name+"_3x3", name+"_1x1a", name, s.mid, 3, 1, 1),
				nconvL(name+"_1x1b", name+"_3x3", name, s.out, 1, 1, 0),
			)
			short := prev
			if b == 0 {
				nodes = append(nodes, nconvL(name+"_proj", prev, name, s.out, 1, 1, 0))
				short = name + "_proj"
			}
			nodes = append(nodes, Node{Name: name + "_add", OpKind: OpAdd,
				Inputs: []string{name + "_1x1b", short}, Layer: name})
			prev = name + "_add"
		}
	}
	nodes = append(nodes,
		Node{Name: "gap", OpKind: OpReduce, Inputs: []string{prev}, Attrs: Attrs{Mode: "mean"}},
		nfc("fc", "gap", 1000),
	)
	return &Model{
		IR: IRVersion, Name: "resnet",
		Inputs:  []Tensor{{Name: "image", Shape: []int{1, 3, 224, 224}}},
		Nodes:   nodes,
		Outputs: []string{"fc"},
	}
}

// inception appends one GoogLeNet module; the Concat node carries the
// module name so downstream modules reference it directly.
func inception(nodes []Node, name, in string, c1, c3r, c3, c5r, c5, pp int) []Node {
	return append(nodes,
		nconvL(name+"_1x1", in, name, c1, 1, 1, 0),
		nconvL(name+"_3x3red", in, name, c3r, 1, 1, 0),
		nconvL(name+"_3x3", name+"_3x3red", name, c3, 3, 1, 1),
		nconvL(name+"_5x5red", in, name, c5r, 1, 1, 0),
		nconvL(name+"_5x5", name+"_5x5red", name, c5, 5, 1, 2),
		Node{Name: name + "_pool", OpKind: OpPool, Inputs: []string{in}, Layer: name,
			Attrs: Attrs{Kernel: 3, Stride: 1, Pad: 1, Mode: "max"}},
		nconvL(name+"_poolproj", name+"_pool", name, pp, 1, 1, 0),
		Node{Name: name, OpKind: OpConcat, Layer: name,
			Inputs: []string{name + "_1x1", name + "_3x3", name + "_5x5", name + "_poolproj"}},
	)
}

func googleNetIR() *Model {
	nodes := []Node{
		nconv("conv1", "image", 64, 7, 2, 3),
		npool("pool1", "conv1", 3, 2, 1),
		nconvL("conv2_red", "pool1", "conv2", 64, 1, 1, 0),
		nconvL("conv2", "conv2_red", "conv2", 192, 3, 1, 1),
		npool("pool2", "conv2", 3, 2, 1),
	}
	nodes = inception(nodes, "inception3a", "pool2", 64, 96, 128, 16, 32, 32)
	nodes = inception(nodes, "inception3b", "inception3a", 128, 128, 192, 32, 96, 64)
	nodes = append(nodes, npool("pool3", "inception3b", 3, 2, 1))
	nodes = inception(nodes, "inception4a", "pool3", 192, 96, 208, 16, 48, 64)
	nodes = inception(nodes, "inception4b", "inception4a", 160, 112, 224, 24, 64, 64)
	nodes = inception(nodes, "inception4c", "inception4b", 128, 128, 256, 24, 64, 64)
	nodes = inception(nodes, "inception4d", "inception4c", 112, 144, 288, 32, 64, 64)
	nodes = inception(nodes, "inception4e", "inception4d", 256, 160, 320, 32, 128, 128)
	nodes = append(nodes, npool("pool4", "inception4e", 3, 2, 1))
	nodes = inception(nodes, "inception5a", "pool4", 256, 160, 320, 32, 128, 128)
	nodes = inception(nodes, "inception5b", "inception5a", 384, 192, 384, 48, 128, 128)
	nodes = append(nodes,
		Node{Name: "gap", OpKind: OpReduce, Inputs: []string{"inception5b"}, Attrs: Attrs{Mode: "mean"}},
		nfc("fc", "gap", 1000),
	)
	return &Model{
		IR: IRVersion, Name: "googlenet",
		Inputs:  []Tensor{{Name: "image", Shape: []int{1, 3, 224, 224}}},
		Nodes:   nodes,
		Outputs: []string{"fc"},
	}
}

func bertIR() *Model {
	var nodes []Node
	prev := "tokens"
	for l := 1; l <= 12; l++ {
		name := fmt.Sprintf("enc%d", l)
		nodes = append(nodes,
			Node{Name: name, OpKind: OpAttention, Inputs: []string{prev},
				Layer: name + "_attn", Attrs: Attrs{Heads: 12}},
			Node{Name: name + "_ffn1", OpKind: OpGemm, Inputs: []string{name},
				Layer: name + "_ffn", Attrs: Attrs{Out: 3072}},
			Node{Name: name + "_ffn2", OpKind: OpGemm, Inputs: []string{name + "_ffn1"},
				Layer: name + "_ffn", Attrs: Attrs{Out: 768}},
		)
		prev = name + "_ffn2"
	}
	return &Model{
		IR: IRVersion, Name: "bert",
		Inputs:  []Tensor{{Name: "tokens", Shape: []int{128, 768}}},
		Nodes:   nodes,
		Outputs: []string{"enc12_ffn2"},
	}
}

func vgg16IR() *Model {
	type block struct{ convs, ch int }
	blocks := []block{{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512}}
	var nodes []Node
	prev := "image"
	for bi, b := range blocks {
		for c := 1; c <= b.convs; c++ {
			name := fmt.Sprintf("conv%d_%d", bi+1, c)
			nodes = append(nodes, nconv(name, prev, b.ch, 3, 1, 1))
			prev = name
		}
		pool := fmt.Sprintf("pool%d", bi+1)
		nodes = append(nodes, npool(pool, prev, 2, 2, 0))
		prev = pool
	}
	nodes = append(nodes,
		nfc("fc6", prev, 4096),
		nfc("fc7", "fc6", 4096),
		nfc("fc8", "fc7", 1000),
	)
	return &Model{
		IR: IRVersion, Name: "vgg16",
		Inputs:  []Tensor{{Name: "image", Shape: []int{1, 3, 224, 224}}},
		Nodes:   nodes,
		Outputs: []string{"fc8"},
	}
}

func gptDecodeIR() *Model {
	var nodes []Node
	prev := "token"
	for l := 1; l <= 12; l++ {
		name := fmt.Sprintf("dec%d", l)
		nodes = append(nodes,
			Node{Name: name, OpKind: OpAttention, Inputs: []string{prev},
				Layer: name + "_attn", Attrs: Attrs{Heads: 12, Ctx: 512}},
			Node{Name: name + "_ffn1", OpKind: OpGemm, Inputs: []string{name},
				Layer: name + "_ffn", Attrs: Attrs{Out: 3072}},
			Node{Name: name + "_ffn2", OpKind: OpGemm, Inputs: []string{name + "_ffn1"},
				Layer: name + "_ffn", Attrs: Attrs{Out: 768}},
		)
		prev = name + "_ffn2"
	}
	return &Model{
		IR: IRVersion, Name: "gpt-decode",
		Inputs:  []Tensor{{Name: "token", Shape: []int{1, 768}}},
		Nodes:   nodes,
		Outputs: []string{"dec12_ffn2"},
	}
}

func dlrmIR() *Model {
	dims := []int{2048, 1024, 1024, 512, 256, 1}
	var nodes []Node
	prev := "features"
	for i := 0; i+1 < len(dims); i++ {
		name := fmt.Sprintf("mlp%d", i+1)
		nodes = append(nodes, nfc(name, prev, dims[i+1]))
		prev = name
	}
	return &Model{
		IR: IRVersion, Name: "dlrm",
		Inputs:  []Tensor{{Name: "features", Shape: []int{1, 2048}}},
		Nodes:   nodes,
		Outputs: []string{"mlp5"},
	}
}
