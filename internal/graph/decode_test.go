package graph

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func decodeModel(prompt, hidden int, attrs Attrs) *Model {
	return &Model{
		IR:   IRVersion,
		Name: "decode-under-test",
		Inputs: []Tensor{
			{Name: "prompt", Shape: []int{prompt, hidden}},
		},
		Nodes: []Node{
			{Name: "gen", OpKind: OpDecode, Inputs: []string{"prompt"}, Attrs: attrs},
		},
		Outputs: []string{"gen"},
	}
}

// A Decode node must lower to exactly the workload builder's flattened
// prefill+steps rendering, with layer names prefixed by the node.
func TestDecodeOpLowersToFlat(t *testing.T) {
	spec := workload.DecodeSpec{Layers: 2, Hidden: 64, Heads: 4, FFN: 256, Prompt: 16, Steps: 3}
	m := decodeModel(spec.Prompt, spec.Hidden, Attrs{
		Heads: spec.Heads, Steps: spec.Steps, FFN: spec.FFN, Layers: spec.Layers,
	})
	got, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.Flat()
	if len(got.Layers) != len(want.Layers) {
		t.Fatalf("lowered %d layers, builder has %d", len(got.Layers), len(want.Layers))
	}
	for i, l := range got.Layers {
		if l.Name != "gen_"+want.Layers[i].Name {
			t.Fatalf("layer %d named %q, want %q", i, l.Name, "gen_"+want.Layers[i].Name)
		}
	}
	if got.MACs() != want.MACs() || got.GEMMCount() != want.GEMMCount() {
		t.Fatalf("lowered %d MACs/%d GEMMs, builder %d/%d",
			got.MACs(), got.GEMMCount(), want.MACs(), want.GEMMCount())
	}
	// The JSON round trip carries the new attrs.
	buf, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	again, err := LowerBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(workload.Canonical(again)) != string(workload.Canonical(got)) {
		t.Fatal("JSON round trip changed the lowered workload")
	}
}

func TestDecodeOpDefaults(t *testing.T) {
	// ffn defaults to 4x hidden, layers to 1, kv to prompt+steps.
	m := decodeModel(8, 32, Attrs{Heads: 2, Steps: 2})
	got, err := Lower(m)
	if err != nil {
		t.Fatal(err)
	}
	want := workload.DecodeSpec{Layers: 1, Hidden: 32, Heads: 2, FFN: 128, Prompt: 8, Steps: 2}.Flat()
	if got.MACs() != want.MACs() {
		t.Fatalf("defaulted MACs %d, want %d", got.MACs(), want.MACs())
	}
	// Declaring adequate capacity is accepted.
	ok := decodeModel(8, 32, Attrs{Heads: 2, Steps: 2, KV: 10})
	if err := ok.Validate(); err != nil {
		t.Fatalf("kv = prompt+steps rejected: %v", err)
	}
}

func TestDecodeOpValidation(t *testing.T) {
	cases := []struct {
		name string
		m    *Model
		want string
	}{
		{"no steps", decodeModel(8, 32, Attrs{Heads: 2}), "non-positive"},
		{"no heads", decodeModel(8, 32, Attrs{Steps: 2}), "non-positive"},
		{"indivisible heads", decodeModel(8, 30, Attrs{Heads: 4, Steps: 2}), "divisible"},
		{"kv under capacity", decodeModel(8, 32, Attrs{Heads: 2, Steps: 2, KV: 9}), "kv capacity"},
		{"foreign attr", decodeModel(8, 32, Attrs{Heads: 2, Steps: 2, Kernel: 3}), "not consumed"},
		{"steps cap", decodeModel(8, 32, Attrs{Heads: 2, Steps: workload.MaxDecodeSteps + 1}), "exceeds"},
	}
	layered := decodeModel(8, 32, Attrs{Heads: 2, Steps: 2})
	layered.Nodes[0].Layer = "shared"
	cases = append(cases, struct {
		name string
		m    *Model
		want string
	}{"layer tag", layered, "layer tag"})
	fourD := decodeModel(8, 32, Attrs{Heads: 2, Steps: 2})
	fourD.Inputs[0].Shape = []int{1, 3, 8, 8}
	cases = append(cases, struct {
		name string
		m    *Model
		want string
	}{"4-D input", fourD, "2-D"})

	for _, c := range cases {
		err := c.m.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %q does not mention %q", c.name, err, c.want)
		}
	}
}

// A Decode node composes with surrounding GEMM-bearing nodes; the
// steps-attr on a non-decode op is rejected.
func TestDecodeOpAttrScoping(t *testing.T) {
	m := &Model{
		IR:   IRVersion,
		Name: "attr-scope",
		Inputs: []Tensor{
			{Name: "x", Shape: []int{4, 16}},
		},
		Nodes: []Node{
			{Name: "proj", OpKind: OpGemm, Inputs: []string{"x"}, Attrs: Attrs{Out: 16, Steps: 3}},
		},
		Outputs: []string{"proj"},
	}
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "not consumed") {
		t.Fatalf("steps on Gemm: %v", err)
	}
}
