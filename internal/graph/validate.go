package graph

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Shape inference and validation (beyond the paper; see the package
// doc). Validate walks the graph once in topological order, assigning
// every tensor a concrete shape and rejecting anything the lowering
// could not compile faithfully: dangling input references, cycles,
// dimension mismatches, attribute abuse, and graphs with no GEMM work
// at all.

// Shape is a tensor shape: [m, features] for 2-D tensors,
// [n, c, h, w] for 4-D ones.
type Shape []int

func (s Shape) String() string {
	out := "["
	for i, d := range s {
		if i > 0 {
			out += "x"
		}
		out += fmt.Sprint(d)
	}
	return out + "]"
}

func (s Shape) equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// elems multiplies the dims; caps on each dim keep this inside int64.
func (s Shape) elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// attrUse lists which attributes each op consumes; Validate rejects a
// node setting any other (fail-closed on typos and copy-paste).
var attrUse = map[Op]map[string]bool{
	OpGemm:      {"out": true},
	OpMatMul:    {},
	OpConv:      {"filters": true, "kernel": true, "stride": true, "pad": true},
	OpDWConv:    {"kernel": true, "stride": true, "pad": true},
	OpFC:        {"out": true},
	OpAttention: {"heads": true, "ctx": true},
	OpDecode:    {"heads": true, "steps": true, "kv": true, "ffn": true, "layers": true},
	OpPool:      {"kernel": true, "stride": true, "pad": true, "mode": true},
	OpReduce:    {"mode": true},
	OpAdd:       {},
	OpMul:       {},
	OpRelu:      {},
	OpSoftmax:   {},
	OpConcat:    {},
}

func (n *Node) checkAttrs() error {
	allowed := attrUse[n.OpKind]
	set := map[string]bool{
		"filters": n.Attrs.Filters != 0,
		"kernel":  n.Attrs.Kernel != 0,
		"stride":  n.Attrs.Stride != 0,
		"pad":     n.Attrs.Pad != 0,
		"out":     n.Attrs.Out != 0,
		"heads":   n.Attrs.Heads != 0,
		"ctx":     n.Attrs.Ctx != 0,
		"steps":   n.Attrs.Steps != 0,
		"kv":      n.Attrs.KV != 0,
		"ffn":     n.Attrs.FFN != 0,
		"layers":  n.Attrs.Layers != 0,
		"mode":    n.Attrs.Mode != "",
	}
	var bad []string
	for name, isSet := range set {
		if isSet && !allowed[name] {
			bad = append(bad, name)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		return fmt.Errorf("graph: node %q: attr %v not consumed by %s", n.Name, bad, n.OpKind)
	}
	for name, v := range map[string]int{
		"filters": n.Attrs.Filters, "kernel": n.Attrs.Kernel,
		"stride": n.Attrs.Stride, "pad": n.Attrs.Pad,
		"out": n.Attrs.Out, "ctx": n.Attrs.Ctx,
		"steps": n.Attrs.Steps, "kv": n.Attrs.KV,
		"ffn": n.Attrs.FFN, "layers": n.Attrs.Layers,
	} {
		if v < 0 || v > MaxDim {
			return fmt.Errorf("graph: node %q: attr %s=%d out of range [0,%d]", n.Name, name, v, MaxDim)
		}
	}
	if n.Attrs.Heads < 0 || n.Attrs.Heads > MaxHeads {
		return fmt.Errorf("graph: node %q: heads=%d out of range [0,%d]", n.Name, n.Attrs.Heads, MaxHeads)
	}
	if n.Attrs.Mode != "" && n.Attrs.Mode != "mean" && n.Attrs.Mode != "max" {
		return fmt.Errorf("graph: node %q: mode %q (want mean or max)", n.Name, n.Attrs.Mode)
	}
	return nil
}

func checkName(kind, name string) error {
	if name == "" {
		return fmt.Errorf("graph: empty %s name", kind)
	}
	if len(name) > MaxNameLen {
		return fmt.Errorf("graph: %s name %q exceeds %d bytes", kind, name[:16]+"...", MaxNameLen)
	}
	return nil
}

// Validate checks the whole document and runs shape inference,
// discarding the shapes. Use Shapes to keep them.
func (m *Model) Validate() error {
	_, err := m.Shapes()
	return err
}

// Shapes validates the model and returns the inferred shape of every
// tensor (graph inputs and node outputs).
func (m *Model) Shapes() (map[string]Shape, error) {
	if m == nil {
		return nil, fmt.Errorf("graph: nil model")
	}
	if m.IR != IRVersion {
		return nil, fmt.Errorf("graph: unsupported IR version %d (want %d)", m.IR, IRVersion)
	}
	if err := checkName("model", m.Name); err != nil {
		return nil, err
	}
	if len(m.Inputs) == 0 {
		return nil, fmt.Errorf("graph: %q declares no inputs", m.Name)
	}
	if len(m.Nodes) == 0 {
		return nil, fmt.Errorf("graph: %q has no nodes", m.Name)
	}
	if len(m.Nodes) > MaxNodes {
		return nil, fmt.Errorf("graph: %d nodes exceeds cap %d", len(m.Nodes), MaxNodes)
	}

	shapes := make(map[string]Shape, len(m.Inputs)+len(m.Nodes))
	for _, in := range m.Inputs {
		if err := checkName("input", in.Name); err != nil {
			return nil, err
		}
		if _, dup := shapes[in.Name]; dup {
			return nil, fmt.Errorf("graph: duplicate input %q", in.Name)
		}
		if len(in.Shape) != 2 && len(in.Shape) != 4 {
			return nil, fmt.Errorf("graph: input %q: shape must be 2-D or 4-D, got %d dims", in.Name, len(in.Shape))
		}
		for _, d := range in.Shape {
			if d <= 0 || d > MaxDim {
				return nil, fmt.Errorf("graph: input %q: dim %d out of range [1,%d]", in.Name, d, MaxDim)
			}
		}
		shapes[in.Name] = append(Shape(nil), in.Shape...)
	}

	// Node table: unique names, known ops, sane attrs.
	byName := make(map[string]int, len(m.Nodes))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		if err := checkName("node", n.Name); err != nil {
			return nil, err
		}
		if len(n.Layer) > MaxNameLen {
			return nil, fmt.Errorf("graph: node %q: layer tag exceeds %d bytes", n.Name, MaxNameLen)
		}
		if _, dup := shapes[n.Name]; dup {
			return nil, fmt.Errorf("graph: node %q shadows a graph input", n.Name)
		}
		if _, dup := byName[n.Name]; dup {
			return nil, fmt.Errorf("graph: duplicate node %q", n.Name)
		}
		if _, known := ops[n.OpKind]; !known {
			return nil, fmt.Errorf("graph: node %q: unknown op %q", n.Name, n.OpKind)
		}
		if len(n.Inputs) == 0 {
			return nil, fmt.Errorf("graph: node %q has no inputs", n.Name)
		}
		if err := n.checkAttrs(); err != nil {
			return nil, err
		}
		byName[n.Name] = i
	}

	// Dangling references, then Kahn's algorithm for cycle detection.
	// Forward references are legal in the file; only cycles are not.
	indeg := make([]int, len(m.Nodes))
	succ := make([][]int, len(m.Nodes))
	for i := range m.Nodes {
		n := &m.Nodes[i]
		for _, ref := range n.Inputs {
			if _, isInput := shapes[ref]; isInput {
				continue
			}
			j, isNode := byName[ref]
			if !isNode {
				return nil, fmt.Errorf("graph: node %q: dangling input %q", n.Name, ref)
			}
			indeg[i]++
			succ[j] = append(succ[j], i)
		}
	}
	// Deterministic order: ready nodes release in file order.
	order := make([]int, 0, len(m.Nodes))
	ready := make([]int, 0, len(m.Nodes))
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	for len(ready) > 0 {
		sort.Ints(ready)
		i := ready[0]
		ready = ready[1:]
		order = append(order, i)
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				ready = append(ready, j)
			}
		}
	}
	if len(order) != len(m.Nodes) {
		var stuck []string
		for i, d := range indeg {
			if d > 0 {
				stuck = append(stuck, m.Nodes[i].Name)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("graph: cycle through %v", stuck)
	}

	// Shape inference in topological order.
	hasGEMMWork := false
	for _, i := range order {
		n := &m.Nodes[i]
		out, err := inferNode(n, shapes)
		if err != nil {
			return nil, err
		}
		shapes[n.Name] = out
		if ops[n.OpKind] {
			hasGEMMWork = true
		}
	}
	if !hasGEMMWork {
		return nil, fmt.Errorf("graph: %q lowers to no GEMM work (no Gemm/MatMul/Conv/DWConv/FC/Attention nodes)", m.Name)
	}

	// Layer tags must be contiguous runs in file order.
	seenTag := map[string]bool{}
	prevTag := ""
	for i := range m.Nodes {
		tag := m.Nodes[i].layerTag()
		if tag == prevTag {
			continue
		}
		if seenTag[tag] {
			return nil, fmt.Errorf("graph: layer %q is not contiguous in node order", tag)
		}
		seenTag[tag] = true
		prevTag = tag
	}

	// Declared outputs must resolve.
	if len(m.Outputs) == 0 {
		return nil, fmt.Errorf("graph: %q declares no outputs", m.Name)
	}
	for _, out := range m.Outputs {
		if _, ok := shapes[out]; !ok {
			return nil, fmt.Errorf("graph: output %q is not a defined tensor", out)
		}
	}
	return shapes, nil
}

// decodeSpec assembles a Decode node's workload.DecodeSpec from its
// input shape and attributes (ffn defaults to 4x hidden, layers to 1)
// and runs the workload-side caps, so validation and lowering agree on
// exactly one spec.
func (n *Node) decodeSpec(in Shape) (workload.DecodeSpec, error) {
	ffn := n.Attrs.FFN
	if ffn == 0 {
		ffn = 4 * in[1]
	}
	layers := n.Attrs.Layers
	if layers == 0 {
		layers = 1
	}
	spec := workload.DecodeSpec{
		Layers: layers, Hidden: in[1], Heads: n.Attrs.Heads,
		FFN: ffn, Prompt: in[0], Steps: n.Attrs.Steps,
	}
	if err := spec.Validate(); err != nil {
		return workload.DecodeSpec{}, fmt.Errorf("graph: node %q: %w", n.Name, err)
	}
	return spec, nil
}

// layerTag is the scheduling-layer this node's GEMMs join.
func (n *Node) layerTag() string {
	if n.Layer != "" {
		return n.Layer
	}
	return n.Name
}

// arity returns the single input shape, enforcing exactly one input.
func oneInput(n *Node, shapes map[string]Shape) (Shape, error) {
	if len(n.Inputs) != 1 {
		return nil, fmt.Errorf("graph: node %q: %s takes exactly 1 input, got %d", n.Name, n.OpKind, len(n.Inputs))
	}
	return shapes[n.Inputs[0]], nil
}

// inferNode type-checks one node and returns its output shape.
func inferNode(n *Node, shapes map[string]Shape) (Shape, error) {
	switch n.OpKind {
	case OpConv, OpDWConv, OpPool:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("graph: node %q: %s needs a 4-D input, got %s", n.Name, n.OpKind, in)
		}
		bn, c, h, w := in[0], in[1], in[2], in[3]
		k := n.Attrs.Kernel
		if k <= 0 {
			return nil, fmt.Errorf("graph: node %q: %s needs kernel > 0", n.Name, n.OpKind)
		}
		stride := n.Attrs.Stride
		if stride == 0 {
			if n.OpKind == OpPool {
				stride = k // the common pool default
			} else {
				stride = 1
			}
		}
		pad := n.Attrs.Pad
		oh := (h+2*pad-k)/stride + 1
		ow := (w+2*pad-k)/stride + 1
		if h+2*pad < k || w+2*pad < k || oh <= 0 || ow <= 0 {
			return nil, fmt.Errorf("graph: node %q: kernel %d stride %d pad %d does not fit %s", n.Name, k, stride, pad, in)
		}
		switch n.OpKind {
		case OpConv:
			if n.Attrs.Filters <= 0 {
				return nil, fmt.Errorf("graph: node %q: Conv needs filters > 0", n.Name)
			}
			return Shape{bn, n.Attrs.Filters, oh, ow}, nil
		case OpDWConv:
			return Shape{bn, c, oh, ow}, nil
		default: // Pool
			return Shape{bn, c, oh, ow}, nil
		}

	case OpReduce:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		if len(in) != 4 {
			return nil, fmt.Errorf("graph: node %q: Reduce needs a 4-D input, got %s", n.Name, in)
		}
		return Shape{in[0], in[1], 1, 1}, nil

	case OpFC:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		if n.Attrs.Out <= 0 {
			return nil, fmt.Errorf("graph: node %q: FC needs out > 0", n.Name)
		}
		if in[0] != 1 {
			return nil, fmt.Errorf("graph: node %q: FC runs at batch 1, got leading dim %d (use Gemm for M > 1)", n.Name, in[0])
		}
		// 4-D inputs flatten (c*h*w) on the way in, matching the
		// hand-coded models' implicit flatten before their classifiers.
		return Shape{1, n.Attrs.Out}, nil

	case OpGemm:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		if len(in) != 2 {
			return nil, fmt.Errorf("graph: node %q: Gemm needs a 2-D input, got %s", n.Name, in)
		}
		if n.Attrs.Out <= 0 {
			return nil, fmt.Errorf("graph: node %q: Gemm needs out > 0", n.Name)
		}
		return Shape{in[0], n.Attrs.Out}, nil

	case OpMatMul:
		if len(n.Inputs) != 2 {
			return nil, fmt.Errorf("graph: node %q: MatMul takes exactly 2 inputs, got %d", n.Name, len(n.Inputs))
		}
		a, b := shapes[n.Inputs[0]], shapes[n.Inputs[1]]
		if len(a) != 2 || len(b) != 2 {
			return nil, fmt.Errorf("graph: node %q: MatMul needs 2-D inputs, got %s and %s", n.Name, a, b)
		}
		if a[1] != b[0] {
			return nil, fmt.Errorf("graph: node %q: inner dims differ: %s x %s", n.Name, a, b)
		}
		return Shape{a[0], b[1]}, nil

	case OpAttention:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		if len(in) != 2 {
			return nil, fmt.Errorf("graph: node %q: Attention needs a 2-D [seq, hidden] input, got %s", n.Name, in)
		}
		heads := n.Attrs.Heads
		if heads <= 0 {
			return nil, fmt.Errorf("graph: node %q: Attention needs heads > 0", n.Name)
		}
		if in[1]%heads != 0 {
			return nil, fmt.Errorf("graph: node %q: hidden %d not divisible by %d heads", n.Name, in[1], heads)
		}
		return Shape{in[0], in[1]}, nil

	case OpDecode:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		if len(in) != 2 {
			return nil, fmt.Errorf("graph: node %q: Decode needs a 2-D [prompt, hidden] input, got %s", n.Name, in)
		}
		if n.Layer != "" {
			// A Decode node expands into many scheduling layers of its
			// own; folding it into a shared layer tag would break the
			// token boundaries the scheduler batches at.
			return nil, fmt.Errorf("graph: node %q: Decode cannot carry a layer tag", n.Name)
		}
		spec, err := n.decodeSpec(in)
		if err != nil {
			return nil, err
		}
		if n.Attrs.KV != 0 && n.Attrs.KV < spec.Prompt+spec.Steps {
			return nil, fmt.Errorf("graph: node %q: kv capacity %d below prompt+steps = %d",
				n.Name, n.Attrs.KV, spec.Prompt+spec.Steps)
		}
		// The decode emits one token per pass; its output is the last
		// token's hidden state.
		return Shape{1, in[1]}, nil

	case OpAdd, OpMul:
		if len(n.Inputs) < 2 {
			return nil, fmt.Errorf("graph: node %q: %s takes at least 2 inputs", n.Name, n.OpKind)
		}
		first := shapes[n.Inputs[0]]
		for _, ref := range n.Inputs[1:] {
			if !shapes[ref].equal(first) {
				return nil, fmt.Errorf("graph: node %q: shape mismatch %s vs %s (%q)", n.Name, first, shapes[ref], ref)
			}
		}
		return append(Shape(nil), first...), nil

	case OpRelu, OpSoftmax:
		in, err := oneInput(n, shapes)
		if err != nil {
			return nil, err
		}
		return append(Shape(nil), in...), nil

	case OpConcat:
		if len(n.Inputs) < 2 {
			return nil, fmt.Errorf("graph: node %q: Concat takes at least 2 inputs", n.Name)
		}
		first := shapes[n.Inputs[0]]
		total := first[1] // channel axis for 4-D, feature axis for 2-D
		for _, ref := range n.Inputs[1:] {
			s := shapes[ref]
			if len(s) != len(first) {
				return nil, fmt.Errorf("graph: node %q: rank mismatch %s vs %s", n.Name, first, s)
			}
			for d := range s {
				if d == 1 {
					continue
				}
				if s[d] != first[d] {
					return nil, fmt.Errorf("graph: node %q: non-channel dim mismatch %s vs %s", n.Name, first, s)
				}
			}
			total += s[1]
		}
		if total > MaxDim {
			return nil, fmt.Errorf("graph: node %q: concatenated channels %d exceed %d", n.Name, total, MaxDim)
		}
		out := append(Shape(nil), first...)
		out[1] = total
		return out, nil
	}
	return nil, fmt.Errorf("graph: node %q: unknown op %q", n.Name, n.OpKind)
}
