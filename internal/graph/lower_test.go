package graph

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/npu"
	"repro/internal/workload"
)

var writeTestdata = flag.Bool("write-testdata", false,
	"rewrite the committed testdata/ IR files from the Go builders")

// TestWriteTestdata regenerates the committed IR files. Run with
//
//	go test ./internal/graph -run TestWriteTestdata -write-testdata
//
// after changing a builder, then re-run the drift test.
func TestWriteTestdata(t *testing.T) {
	if !*writeTestdata {
		t.Skip("pass -write-testdata to regenerate testdata/")
	}
	for _, c := range irCases() {
		buf, err := Marshal(c.model())
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		if err := os.WriteFile(filepath.Join("testdata", c.file), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIRModelsMatchConstructors is the tentpole's drift gate: every
// committed IR file must parse, validate, and lower to a workload
// byte-identical (canonical serialization AND compiled measurement) to
// the hand-coded constructor it replaces.
func TestIRModelsMatchConstructors(t *testing.T) {
	for _, c := range irCases() {
		c := c
		t.Run(c.file, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", c.file))
			if err != nil {
				t.Fatalf("missing committed IR (run -write-testdata?): %v", err)
			}
			// The committed bytes must match the builder, so the two
			// cannot drift apart silently.
			fromBuilder, err := Marshal(c.model())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, fromBuilder) {
				t.Fatalf("committed %s differs from Go builder; regenerate with -write-testdata", c.file)
			}

			got, err := LowerBytes(data)
			if err != nil {
				t.Fatalf("lowering committed IR: %v", err)
			}
			want := c.want()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("lowered workload differs from constructor:\ngot  %d layers\nwant %d layers\n%s",
					len(got.Layers), len(want.Layers), diffWorkloads(got, want))
			}
			if !bytes.Equal(workload.Canonical(got), workload.Canonical(want)) {
				t.Fatal("canonical serialization differs (DeepEqual passed — canonicalizer bug?)")
			}
			if workload.Digest(got) != workload.Digest(want) {
				t.Fatal("workload digest differs")
			}

			// The compiled programs must be measurement-identical, so
			// the golden cycle pins and attestation quotes carry over
			// unchanged to IR-derived submissions.
			pg, _, err := npu.Compile(got, npu.DefaultConfig(), 0, npu.DefaultLayout)
			if err != nil {
				t.Fatal(err)
			}
			pw, _, err := npu.Compile(want, npu.DefaultConfig(), 0, npu.DefaultLayout)
			if err != nil {
				t.Fatal(err)
			}
			if pg.Measurement() != pw.Measurement() {
				t.Fatal("compiled program measurement differs")
			}
		})
	}
}

// diffWorkloads renders the first point of divergence for a readable
// failure message.
func diffWorkloads(got, want workload.Workload) string {
	if got.Name != want.Name {
		return "name: " + got.Name + " vs " + want.Name
	}
	n := len(got.Layers)
	if len(want.Layers) < n {
		n = len(want.Layers)
	}
	for i := 0; i < n; i++ {
		g, w := got.Layers[i], want.Layers[i]
		if g.Name != w.Name {
			return "layer " + g.Name + " vs " + w.Name
		}
		if !reflect.DeepEqual(g, w) {
			m := len(g.GEMMs)
			if len(w.GEMMs) < m {
				m = len(w.GEMMs)
			}
			for j := 0; j < m; j++ {
				if g.GEMMs[j] != w.GEMMs[j] {
					return "layer " + g.Name + ": gemm " +
						g.GEMMs[j].Name + " vs " + w.GEMMs[j].Name
				}
			}
			return "layer " + g.Name + ": gemm count differs"
		}
	}
	return "layer count differs"
}

// TestLoadFile exercises the file front door on a committed model.
func TestLoadFile(t *testing.T) {
	w, err := LoadFile(filepath.Join("testdata", "alexnet.json"))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "alexnet" || len(w.Layers) != 8 {
		t.Fatalf("unexpected workload %q with %d layers", w.Name, len(w.Layers))
	}
	if _, err := LoadFile(filepath.Join("testdata", "no-such-file.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
