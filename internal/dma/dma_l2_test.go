package dma

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/xlate"
)

func fixtureWithL2(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t)
	l2, err := cache.New(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.eng.AttachL2(l2)
	return f
}

func TestDMAThroughL2WarmHitIsFaster(t *testing.T) {
	f := fixtureWithL2(t)
	req := Request{VA: 0x8000_0000, Bytes: 4096, Dir: ToScratchpad}
	cold, err := f.eng.Do(req, f.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Re-access at a later issue point: everything hits the L2, so the
	// transfer duration (done - issue) shrinks.
	warmStart := cold + 10_000
	warm, err := f.eng.Do(req, f.sp, spad.NonSecure, warmStart)
	if err != nil {
		t.Fatal(err)
	}
	if warm-warmStart >= cold {
		t.Fatalf("warm L2 access (%d cycles) not faster than cold (%d)", warm-warmStart, cold)
	}
}

func TestDMAPipelinedThroughL2(t *testing.T) {
	f := fixtureWithL2(t)
	reqs := []Request{
		{VA: 0x8000_0000, Bytes: 1024, Dir: ToScratchpad},
		{VA: 0x8000_0400, Bytes: 1024, Dir: ToScratchpad},
	}
	done, err := f.eng.DoPipelined(reqs, f.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("no time elapsed")
	}
	// Warm pass: the batch completes sooner relative to its start.
	coldDur := done
	start := done + 1000
	warmDone, err := f.eng.DoPipelined(reqs, f.sp, spad.NonSecure, start)
	if err != nil {
		t.Fatal(err)
	}
	if warmDone-start >= coldDur {
		t.Fatalf("warm pipelined batch (%d) not faster than cold (%d)", warmDone-start, coldDur)
	}
}

func TestDMAFunctionalThroughL2RoundTrip(t *testing.T) {
	f := fixtureWithL2(t)
	want := bytes.Repeat([]byte{0x5A}, 64)
	f.phys.Write(0x8000_2000, want)
	if _, err := f.eng.DoPipelined([]Request{{
		VA: 0x8000_2000, Bytes: 64, Dir: ToScratchpad, SpadLine: 3, Functional: true,
	}}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 16)
	if err := f.sp.Read(spad.NonSecure, 3, line); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, want[:16]) {
		t.Fatalf("line = %x", line)
	}
}

func TestDMAPipelinedDeniedAborts(t *testing.T) {
	f := newFixture(t)
	// Swap in a translator that denies everything.
	f.eng.SetTranslator(denyAll{})
	_, err := f.eng.DoPipelined([]Request{{VA: 0x1000, Bytes: 64, Dir: ToScratchpad}}, f.sp, spad.NonSecure, 0)
	if err == nil {
		t.Fatal("denied batch succeeded")
	}
	// Zero-byte entries are skipped without touching the translator.
	if _, err := f.eng.DoPipelined([]Request{{VA: 0x1000, Bytes: 0}}, f.sp, spad.NonSecure, 5); err != nil {
		t.Fatal(err)
	}
	// Empty batch returns immediately.
	if done, err := f.eng.DoPipelined(nil, f.sp, spad.NonSecure, 7); err != nil || done != 7 {
		t.Fatalf("empty batch: %d %v", done, err)
	}
}

func TestDMAPipelinedFunctionalSpadDenied(t *testing.T) {
	f := newFixture(t)
	if err := f.sp.Write(spad.SecureDomain, 0, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Non-secure functional mvout of a secure line fails inside the
	// pipelined path too.
	_, err := f.eng.DoPipelined([]Request{{
		VA: 0x8000_0000, Bytes: 16, Dir: ToMemory, SpadLine: 0, Functional: true,
	}}, f.sp, spad.NonSecure, 0)
	if err == nil {
		t.Fatal("pipelined exfiltration succeeded")
	}
}

func TestEnginePhysAccessor(t *testing.T) {
	f := newFixture(t)
	if f.eng.Phys() != f.phys {
		t.Fatal("Phys accessor broken")
	}
}

type denyAll struct{}

func (denyAll) Name() string { return "deny" }
func (denyAll) Translate(req xlate.Request, at sim.Cycle) (xlate.Result, error) {
	return xlate.Result{}, fmt.Errorf("deny-all: va %#x refused", uint64(req.VA))
}
func (denyAll) OnContextSwitch(int) {}
