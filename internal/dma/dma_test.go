package dma

import (
	"bytes"
	"testing"

	"repro/internal/guarder"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/tee"
	"repro/internal/xlate"
)

type fixture struct {
	eng     *Engine
	sp      *spad.Scratchpad
	phys    *mem.Physical
	stats   *sim.Stats
	channel *sim.Resource
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	stats := sim.NewStats()
	phys := mem.NewPhysical()
	channel := sim.NewResource("dram")
	sp, err := spad.New(spad.Config{Lines: 256, LineBytes: 16, Kind: spad.Exclusive, Isolated: true}, stats)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(DefaultConfig(), xlate.NewIdentity(stats), channel, phys, stats)
	return &fixture{eng: eng, sp: sp, phys: phys, stats: stats, channel: channel}
}

func TestDMATiming(t *testing.T) {
	f := newFixture(t)
	done, err := f.eng.Do(Request{VA: 0x8000_0000, Bytes: 1024, Dir: ToScratchpad}, f.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1024B / 16Bpc = 64 transfer cycles + 100 latency.
	if done != 164 {
		t.Fatalf("done = %d, want 164", done)
	}
	if f.stats.Get(sim.CtrDMARequests) != 1 || f.stats.Get(sim.CtrDMAPackets) != 16 {
		t.Fatalf("counters: req=%d pkts=%d", f.stats.Get(sim.CtrDMARequests), f.stats.Get(sim.CtrDMAPackets))
	}
}

func TestDMAZeroBytesIsFree(t *testing.T) {
	f := newFixture(t)
	done, err := f.eng.Do(Request{VA: 0x8000_0000, Bytes: 0, Dir: ToScratchpad}, f.sp, spad.NonSecure, 7)
	if err != nil || done != 7 {
		t.Fatalf("zero-byte dma: done=%d err=%v", done, err)
	}
}

func TestDMAChannelContention(t *testing.T) {
	f := newFixture(t)
	d1, _ := f.eng.Do(Request{VA: 0x8000_0000, Bytes: 1600, Dir: ToScratchpad}, f.sp, spad.NonSecure, 0)
	d2, _ := f.eng.Do(Request{VA: 0x8001_0000, Bytes: 1600, Dir: ToScratchpad}, f.sp, spad.NonSecure, 0)
	if d2 <= d1 {
		t.Fatalf("no serialization on shared channel: %d then %d", d1, d2)
	}
}

func TestDMAFunctionalLoadStore(t *testing.T) {
	f := newFixture(t)
	want := bytes.Repeat([]byte("0123456789abcdef"), 4) // 64 bytes = 4 lines
	f.phys.Write(0x8000_0100, want)
	if _, err := f.eng.Do(Request{
		VA: 0x8000_0100, Bytes: 64, Dir: ToScratchpad, SpadLine: 10, Functional: true,
	}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 16)
	if err := f.sp.Read(spad.NonSecure, 11, line); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, want[16:32]) {
		t.Fatalf("scratchpad line = %q", line)
	}
	// Store back to a different address and compare.
	if _, err := f.eng.Do(Request{
		VA: 0x8000_0800, Bytes: 64, Dir: ToMemory, SpadLine: 10, Functional: true,
	}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	f.phys.Read(0x8000_0800, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch: %q", got)
	}
}

func TestDMAPartialTailLine(t *testing.T) {
	f := newFixture(t)
	f.phys.Write(0x8000_0000, []byte("hello world!"))
	if _, err := f.eng.Do(Request{
		VA: 0x8000_0000, Bytes: 12, Dir: ToScratchpad, SpadLine: 0, Functional: true,
	}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 16)
	if err := f.sp.Read(spad.NonSecure, 0, line); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line[:12], []byte("hello world!")) {
		t.Fatalf("line = %q", line)
	}
	for _, b := range line[12:] {
		if b != 0 {
			t.Fatal("tail of partial line not zeroed")
		}
	}
}

func TestDMADeniedByGuarder(t *testing.T) {
	f := newFixture(t)
	machine := tee.NewMachine(f.phys)
	g := guarder.NewDefault(f.stats)
	sec := machine.SecureContext()
	// Only a small normal window is authorized.
	if err := g.SetCheckReg(sec, 0, guarder.CheckReg{Base: 0x8800_0000, Size: 0x1000, Perm: mem.PermRW, World: mem.Normal, Valid: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTransReg(sec, 0, guarder.TransReg{VBase: 0x1000, PBase: 0x8800_0000, Size: 0x1000, Valid: true}); err != nil {
		t.Fatal(err)
	}
	// A window pointing at secure memory exists too, but no checking
	// register grants normal-world access there.
	if err := g.SetTransReg(sec, 1, guarder.TransReg{VBase: 0x9000, PBase: 0x9000_0000, Size: 0x1000, Valid: true}); err != nil {
		t.Fatal(err)
	}
	f.eng.SetTranslator(g)

	if _, err := f.eng.Do(Request{VA: 0x1000, Bytes: 64, Dir: ToScratchpad, World: mem.Normal}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatalf("authorized dma denied: %v", err)
	}
	if _, err := f.eng.Do(Request{VA: 0x9000, Bytes: 64, Dir: ToScratchpad, World: mem.Normal}, f.sp, spad.NonSecure, 0); err == nil {
		t.Fatal("dma into secure memory allowed")
	}
}

func TestDMAWriteNeedsWritePerm(t *testing.T) {
	f := newFixture(t)
	machine := tee.NewMachine(f.phys)
	g := guarder.NewDefault(f.stats)
	sec := machine.SecureContext()
	if err := g.SetCheckReg(sec, 0, guarder.CheckReg{Base: 0x8800_0000, Size: 0x1000, Perm: mem.PermRead, World: mem.Normal, Valid: true}); err != nil {
		t.Fatal(err)
	}
	if err := g.SetTransReg(sec, 0, guarder.TransReg{VBase: 0x1000, PBase: 0x8800_0000, Size: 0x1000, Valid: true}); err != nil {
		t.Fatal(err)
	}
	f.eng.SetTranslator(g)
	if err := f.sp.Write(spad.NonSecure, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.eng.Do(Request{VA: 0x1000, Bytes: 16, Dir: ToMemory, World: mem.Normal}, f.sp, spad.NonSecure, 0); err == nil {
		t.Fatal("mvout through read-only authority allowed")
	}
	if _, err := f.eng.Do(Request{VA: 0x1000, Bytes: 16, Dir: ToScratchpad, World: mem.Normal}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatalf("mvin through read authority denied: %v", err)
	}
}

func TestDMAFunctionalRespectsSpadIsolation(t *testing.T) {
	f := newFixture(t)
	// A secure write left line 5 tagged secure; a non-secure functional
	// mvout that tries to read it must fail.
	if err := f.sp.Write(spad.SecureDomain, 5, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	_, err := f.eng.Do(Request{
		VA: 0x8000_0000, Bytes: 16, Dir: ToMemory, SpadLine: 5, Functional: true,
	}, f.sp, spad.NonSecure, 0)
	if err == nil {
		t.Fatal("non-secure mvout exfiltrated a secure scratchpad line")
	}
}

func TestDirectionString(t *testing.T) {
	if ToScratchpad.String() != "mvin" || ToMemory.String() != "mvout" {
		t.Fatal("direction names")
	}
}
