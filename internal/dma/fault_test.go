package dma

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/spad"
)

func armFixture(t *testing.T, events []fault.Event) (*fixture, *fault.Injector) {
	t.Helper()
	f := newFixture(t)
	inj := fault.NewInjector(fault.Plan{Events: events}, f.stats)
	f.eng.AttachInjector(inj)
	return f, inj
}

func TestDMAStallWatchdogRetries(t *testing.T) {
	clean := newFixture(t)
	cleanDone, err := clean.eng.Do(Request{VA: 0x8000_0000, Bytes: 1024, Dir: ToScratchpad}, clean.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatal(err)
	}

	f, inj := armFixture(t, []fault.Event{{At: 0, Kind: fault.DMAStall}})
	done, err := f.eng.Do(Request{VA: 0x8000_0000, Bytes: 1024, Dir: ToScratchpad}, f.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatalf("stall not recovered: %v", err)
	}
	// One watchdog timeout delays the request by the watchdog period.
	if done != cleanDone+DefaultConfig().WatchdogCycles {
		t.Fatalf("done = %d, want %d", done, cleanDone+DefaultConfig().WatchdogCycles)
	}
	if f.stats.Get(sim.CtrDMATimeouts) != 1 || f.stats.Get(sim.CtrDMARetries) != 1 {
		t.Fatalf("counters: timeouts=%d retries=%d", f.stats.Get(sim.CtrDMATimeouts), f.stats.Get(sim.CtrDMARetries))
	}
	if inj.Remaining() != 0 {
		t.Fatal("event not consumed")
	}
}

func TestDMAStallsExhaustRetriesFailClosed(t *testing.T) {
	// RetryLimit is 3: four due stall events exceed it.
	events := make([]fault.Event, 4)
	for i := range events {
		events[i] = fault.Event{At: 0, Kind: fault.DMAStall}
	}
	// Space the later ones inside the growing backoff window so each
	// reissue hits the next stall.
	f, _ := armFixture(t, events)
	_, err := f.eng.Do(Request{VA: 0x8000_0000, Bytes: 1024, Dir: ToScratchpad}, f.sp, spad.NonSecure, 0)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if f.stats.Get(sim.CtrDMATimeouts) != 4 {
		t.Fatalf("timeouts = %d, want 4", f.stats.Get(sim.CtrDMATimeouts))
	}
}

func TestDMABitFlipCorrectedByECC(t *testing.T) {
	f, _ := armFixture(t, []fault.Event{{At: 0, Kind: fault.DRAMBitFlip, Sel: 2, Bit: 9}})
	f.phys.EnableECC(f.stats)
	want := bytes.Repeat([]byte("0123456789abcdef"), 4)
	f.phys.Write(0x8000_0100, want)

	clean := newFixture(t)
	cleanDone, err := clean.eng.Do(Request{VA: 0x8000_0100, Bytes: 64, Dir: ToScratchpad, SpadLine: 0, Functional: true}, clean.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatal(err)
	}

	done, err := f.eng.Do(Request{VA: 0x8000_0100, Bytes: 64, Dir: ToScratchpad, SpadLine: 0, Functional: true}, f.sp, spad.NonSecure, 0)
	if err != nil {
		t.Fatalf("corrected flip failed the request: %v", err)
	}
	if done != cleanDone+mem.ECCCorrectionCycles {
		t.Fatalf("done = %d, want %d (+%d correction)", done, cleanDone+mem.ECCCorrectionCycles, mem.ECCCorrectionCycles)
	}
	// The data the scratchpad received is the corrected data.
	line := make([]byte, 16)
	if err := f.sp.Read(spad.NonSecure, 2, line); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, want[32:48]) {
		t.Fatalf("line 2 = %q, want %q", line, want[32:48])
	}
	if f.stats.Get(sim.CtrECCCorrected) != 1 {
		t.Fatal("correction not counted")
	}
}

func TestDMADoubleFlipFailsClosed(t *testing.T) {
	// Two flips in the same word (same Sel, different bits) make it
	// uncorrectable; the request must fail, not deliver garbage.
	f, _ := armFixture(t, []fault.Event{
		{At: 0, Kind: fault.DRAMBitFlip, Sel: 1, Bit: 3},
		{At: 0, Kind: fault.DRAMBitFlip, Sel: 1, Bit: 44},
	})
	f.phys.EnableECC(f.stats)
	f.phys.Write(0x8000_0200, bytes.Repeat([]byte{0xff}, 64))

	_, err := f.eng.Do(Request{VA: 0x8000_0200, Bytes: 64, Dir: ToScratchpad, SpadLine: 0, Functional: true}, f.sp, spad.NonSecure, 0)
	var eccErr *mem.ECCError
	if !errors.As(err, &eccErr) {
		t.Fatalf("err = %v, want ECCError", err)
	}
	if f.stats.Get(sim.CtrECCUncorrectable) != 1 {
		t.Fatal("uncorrectable not counted")
	}
}

// Without ECC the flip flows into the scratchpad silently — the
// baseline that motivates enabling it in InstallFaultPlan.
func TestDMABitFlipWithoutECCIsSilent(t *testing.T) {
	f, _ := armFixture(t, []fault.Event{{At: 0, Kind: fault.DRAMBitFlip, Sel: 0, Bit: 0}})
	want := bytes.Repeat([]byte{0x00}, 64)
	f.phys.Write(0x8000_0300, want)
	if _, err := f.eng.Do(Request{VA: 0x8000_0300, Bytes: 64, Dir: ToScratchpad, SpadLine: 0, Functional: true}, f.sp, spad.NonSecure, 0); err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 16)
	if err := f.sp.Read(spad.NonSecure, 0, line); err != nil {
		t.Fatal(err)
	}
	if line[0] != 0x01 {
		t.Fatalf("line[0] = %#x, want the silent flip", line[0])
	}
}
