// Package dma models the NPU's integrated DMA engine (a Type-1
// integrated NPU in the paper's §II Fig. 2 taxonomy): it moves tiles
// between system DRAM and the scratchpad, going through a pluggable
// access-control unit (xlate.Translator — IOMMU, Guarder, or none) on
// every request.
//
// Timing per request: a fixed DRAM access latency, plus the transfer
// paced by DRAM bandwidth on a shared channel (contention with other
// cores), plus whatever stall the translator inflicts (page walks).
// Requests are split into 64-byte packets on the bus; the translator
// decides whether it pays per packet (IOMMU) or per request (Guarder).
package dma

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/trace"
	"repro/internal/xlate"
)

// ErrStalled is returned when a request stalls past the watchdog's
// retry budget — the engine reports the request dead rather than
// hanging the core forever.
var ErrStalled = errors.New("dma: request stalled beyond watchdog retry limit")

// Direction of a transfer.
type Direction uint8

const (
	// ToScratchpad loads DRAM -> scratchpad (mvin).
	ToScratchpad Direction = iota
	// ToMemory stores scratchpad -> DRAM (mvout).
	ToMemory
)

func (d Direction) String() string {
	if d == ToScratchpad {
		return "mvin"
	}
	return "mvout"
}

// Config holds the DMA timing parameters.
type Config struct {
	// BytesPerCycle is the DRAM channel bandwidth (16 GB/s @ 1 GHz =
	// 16 B/cycle in the paper's Table II).
	BytesPerCycle uint64
	// RequestLatency is the fixed DRAM access latency per request.
	RequestLatency sim.Cycle
	// WatchdogCycles is how long a stalled request waits before the
	// watchdog fires and the engine reissues it (0 = default 2000).
	WatchdogCycles sim.Cycle
	// RetryLimit bounds watchdog-driven reissues per request
	// (0 = default 3); past it the request fails with ErrStalled.
	RetryLimit int
}

// DefaultConfig matches the paper's SoC (Table II).
func DefaultConfig() Config {
	return Config{BytesPerCycle: 16, RequestLatency: 100, WatchdogCycles: 2000, RetryLimit: 3}
}

// Request describes one DMA transfer of a contiguous region.
type Request struct {
	// VA is the NPU-visible virtual address of the DRAM side.
	VA mem.VirtAddr
	// Bytes to move.
	Bytes uint64
	// Dir is the transfer direction.
	Dir Direction
	// SpadLine is the first scratchpad wordline on the SRAM side.
	SpadLine int
	// World and TaskID identify the issuing context.
	World  mem.World
	TaskID int
	// Functional requests actually move bytes; timing-only requests
	// (the common case in benchmarks) skip data movement.
	Functional bool
}

// Engine is one core's DMA unit.
type Engine struct {
	cfg   Config
	xl    xlate.Translator
	chan_ *sim.Resource // shared DRAM channel
	phys  *mem.Physical
	stats *sim.Stats
	l2    *cache.L2 // optional shared L2 in front of DRAM
	inj   *fault.Injector

	// Observability: pre-resolved instruments, nil unless AttachObserver
	// was called. core labels this engine's spans on the timeline.
	obsXfer  *obs.Histogram
	obsRetry *obs.Counter
	obsRec   *trace.Recorder
	obsProf  *obs.Profiler
	core     int
}

// AttachL2 routes this engine's traffic through a shared L2: hits are
// served by the cache banks, only misses claim the DRAM channel.
func (e *Engine) AttachL2(l2 *cache.L2) { e.l2 = l2 }

// AttachInjector points the engine at a fault injector; DRAM bit-flip
// and stall events land on the next request at/after their cycle.
func (e *Engine) AttachInjector(inj *fault.Injector) { e.inj = inj }

// AttachObserver wires the engine into an observability layer: a span
// per burst, a dma.xfer.cycles histogram of end-to-end request
// latency, a dma.retry.count counter of watchdog reissues, and a
// dma.chan.backlog profiling hook sampling how far ahead the shared
// DRAM channel is booked. core labels this engine's spans. Nil
// detaches.
func (e *Engine) AttachObserver(o *obs.Observer, core int) {
	if o == nil {
		e.obsXfer, e.obsRetry, e.obsRec, e.obsProf = nil, nil, nil, nil
		return
	}
	e.core = core
	e.obsXfer = o.Registry().Histogram("dma.xfer.cycles", obs.DefaultCycleBuckets())
	e.obsRetry = o.Registry().Counter("dma.retry.count")
	e.obsRec = o.Trace()
	e.obsProf = o.Profiler()
	e.obsProf.Register("dma.chan.backlog", func(now sim.Cycle) int64 {
		if b := e.chan_.NextFree() - now; b > 0 {
			return int64(b)
		}
		return 0
	})
}

// recordXfer puts one completed burst on the span timeline and in the
// latency histogram.
func (e *Engine) recordXfer(dir Direction, at, done sim.Cycle) {
	if e.obsXfer == nil {
		return
	}
	e.obsXfer.Observe(int64(done - at))
	if e.obsRec != nil {
		name := "dma.mvin"
		if dir == ToMemory {
			name = "dma.mvout"
		}
		e.obsRec.Record(trace.Event{
			Name: name, Kind: trace.KindDMA, Core: e.core, Start: at, End: done,
		})
	}
}

// New wires a DMA engine to its translator, the shared DRAM channel,
// and physical memory (used only by functional transfers).
func New(cfg Config, xl xlate.Translator, channel *sim.Resource, phys *mem.Physical, stats *sim.Stats) *Engine {
	if cfg.WatchdogCycles <= 0 {
		cfg.WatchdogCycles = 2000
	}
	if cfg.RetryLimit <= 0 {
		cfg.RetryLimit = 3
	}
	return &Engine{cfg: cfg, xl: xl, chan_: channel, phys: phys, stats: stats}
}

// Translator returns the attached access-control unit.
func (e *Engine) Translator() xlate.Translator { return e.xl }

// Phys exposes the physical memory behind the engine (functional
// paths stage operand bytes through it).
func (e *Engine) Phys() *mem.Physical { return e.phys }

// SetTranslator swaps the access-control unit (used when an experiment
// compares mechanisms on one SoC).
func (e *Engine) SetTranslator(xl xlate.Translator) { e.xl = xl }

// Do executes one DMA request starting no earlier than cycle `at`,
// optionally moving real bytes to/from sp, and returns the completion
// cycle. Denied requests return an error and touch nothing.
func (e *Engine) Do(req Request, sp *spad.Scratchpad, domain spad.DomainID, at sim.Cycle) (sim.Cycle, error) {
	if req.Bytes == 0 {
		return at, nil
	}
	need := mem.PermRead
	if req.Dir == ToMemory {
		need = mem.PermWrite
	}
	res, err := e.xl.Translate(xlate.Request{
		VA: req.VA, Bytes: req.Bytes, Need: need, World: req.World, TaskID: req.TaskID,
	}, at)
	if err != nil {
		return 0, fmt.Errorf("dma: %s %d bytes at va %#x: %w", req.Dir, req.Bytes, uint64(req.VA), err)
	}

	if e.stats != nil {
		e.stats.Inc(sim.CtrDMARequests)
		e.stats.Add(sim.CtrDMAPackets, int64((req.Bytes+xlate.PacketBytes-1)/xlate.PacketBytes))
		e.stats.Add(sim.CtrDMABytes, int64(req.Bytes))
		e.stats.Inc(sim.CtrDRAMRequests)
		e.stats.Add(sim.CtrDRAMBytes, int64(req.Bytes))
	}

	// The translator's stall delays issue; then the L2 (if attached)
	// serves hits from its banks while misses pay the channel.
	issue := at + res.Stall
	issue, err = e.applyStalls(issue)
	if err != nil {
		return 0, err
	}
	e.injectDRAMFaults(res.PA, req.Bytes, issue)
	done := e.serveBytes(res.PA, req.Bytes, issue)
	done, err = e.scrub(res.PA, req.Bytes, done)
	if err != nil {
		return 0, err
	}

	if req.Functional && sp != nil {
		if err := e.moveBytes(req, res.PA, sp, domain); err != nil {
			return 0, err
		}
	}
	e.obsProf.MaybeSample(at)
	e.recordXfer(req.Dir, at, done)
	return done, nil
}

// applyStalls consumes due DMA-stall events. Each one freezes the
// request until the engine's watchdog fires, then reissues it with a
// doubled (capped) backoff; past RetryLimit the request fails closed.
func (e *Engine) applyStalls(issue sim.Cycle) (sim.Cycle, error) {
	if !e.inj.Enabled() {
		return issue, nil
	}
	backoff := e.cfg.WatchdogCycles
	for attempt := 0; ; attempt++ {
		if _, ok := e.inj.Take(fault.DMAStall, issue); !ok {
			return issue, nil
		}
		if e.stats != nil {
			e.stats.Inc(sim.CtrDMATimeouts)
		}
		if attempt >= e.cfg.RetryLimit {
			return 0, ErrStalled
		}
		if e.stats != nil {
			e.stats.Inc(sim.CtrDMARetries)
		}
		if e.obsRetry != nil {
			e.obsRetry.Inc()
		}
		issue += backoff
		if backoff < e.cfg.WatchdogCycles*8 {
			backoff *= 2
		}
	}
}

// injectDRAMFaults lands due DRAM bit-flip events on a word inside the
// range this request touches.
func (e *Engine) injectDRAMFaults(pa mem.PhysAddr, bytes uint64, now sim.Cycle) {
	if !e.inj.Enabled() || e.phys == nil {
		return
	}
	for {
		ev, ok := e.inj.Take(fault.DRAMBitFlip, now)
		if !ok {
			return
		}
		words := int(bytes / 8)
		if words < 1 {
			words = 1
		}
		e.phys.InjectBitFlip(pa+mem.PhysAddr(ev.Pick(words)*8), ev.Bit)
	}
}

// scrub runs the memory controller's ECC pass over the request's
// range: corrected words add the correction turnaround to the
// completion cycle, an uncorrectable word fails the request closed.
func (e *Engine) scrub(pa mem.PhysAddr, bytes uint64, done sim.Cycle) (sim.Cycle, error) {
	if e.phys == nil {
		return done, nil
	}
	corrected, err := e.phys.Scrub(pa, bytes)
	if err != nil {
		return 0, fmt.Errorf("dma: %w", err)
	}
	return done + sim.Cycle(corrected)*mem.ECCCorrectionCycles, nil
}

// DoPipelined issues a batch of requests back-to-back, the way the
// hardware DMA queue does: requests pipeline behind each other on the
// DRAM channel, translation stalls delay the stalled request's issue
// (a pipeline bubble), and the fixed DRAM latency is paid once for the
// batch rather than per request. It returns the completion cycle of
// the last request. A denied request aborts the batch.
func (e *Engine) DoPipelined(reqs []Request, sp *spad.Scratchpad, domain spad.DomainID, at sim.Cycle) (sim.Cycle, error) {
	if len(reqs) == 0 {
		return at, nil
	}
	issue := at
	var lastEnd sim.Cycle = at
	for _, req := range reqs {
		if req.Bytes == 0 {
			continue
		}
		need := mem.PermRead
		if req.Dir == ToMemory {
			need = mem.PermWrite
		}
		res, err := e.xl.Translate(xlate.Request{
			VA: req.VA, Bytes: req.Bytes, Need: need, World: req.World, TaskID: req.TaskID,
		}, issue)
		if err != nil {
			return 0, fmt.Errorf("dma: %s %d bytes at va %#x: %w", req.Dir, req.Bytes, uint64(req.VA), err)
		}
		if e.stats != nil {
			e.stats.Inc(sim.CtrDMARequests)
			e.stats.Add(sim.CtrDMAPackets, int64((req.Bytes+xlate.PacketBytes-1)/xlate.PacketBytes))
			e.stats.Add(sim.CtrDMABytes, int64(req.Bytes))
			e.stats.Inc(sim.CtrDRAMRequests)
			e.stats.Add(sim.CtrDRAMBytes, int64(req.Bytes))
		}
		issue += res.Stall
		issue, err = e.applyStalls(issue)
		if err != nil {
			return 0, err
		}
		e.injectDRAMFaults(res.PA, req.Bytes, issue)
		end, start := e.serveBytesPipelined(res.PA, req.Bytes, issue)
		end, err = e.scrub(res.PA, req.Bytes, end)
		if err != nil {
			return 0, err
		}
		if end > lastEnd {
			lastEnd = end
		}
		issue = start // next request issues behind this one
		if req.Functional && sp != nil {
			if err := e.moveBytes(req, res.PA, sp, domain); err != nil {
				return 0, err
			}
		}
	}
	e.obsProf.MaybeSample(at)
	e.recordXfer(reqs[0].Dir, at, lastEnd+e.cfg.RequestLatency)
	return lastEnd + e.cfg.RequestLatency, nil
}

// serveBytes fulfils one request's data movement and returns its
// completion cycle (including the fixed request latency).
func (e *Engine) serveBytes(pa mem.PhysAddr, bytes uint64, issue sim.Cycle) sim.Cycle {
	end, _ := e.serveBytesPipelined(pa, bytes, issue)
	return end + e.cfg.RequestLatency
}

// serveBytesPipelined fulfils one request without the fixed latency
// (the batch pays it once) and additionally returns the cycle the next
// pipelined request may issue behind this one.
func (e *Engine) serveBytesPipelined(pa mem.PhysAddr, bytes uint64, issue sim.Cycle) (end, next sim.Cycle) {
	if e.l2 == nil {
		xfer := sim.Cycle((bytes + e.cfg.BytesPerCycle - 1) / e.cfg.BytesPerCycle)
		start := e.chan_.Claim(issue, xfer)
		return start + xfer, start
	}
	r := e.l2.Access(pa, bytes, issue)
	end = r.HitDone
	next = issue
	if r.MissBytes > 0 {
		xfer := sim.Cycle((r.MissBytes + e.cfg.BytesPerCycle - 1) / e.cfg.BytesPerCycle)
		start := e.chan_.Claim(issue, xfer)
		next = start
		if d := start + xfer; d > end {
			end = d
		}
	}
	return end, next
}

func (e *Engine) moveBytes(req Request, pa mem.PhysAddr, sp *spad.Scratchpad, domain spad.DomainID) error {
	lineBytes := sp.LineBytes()
	lines := int((req.Bytes + uint64(lineBytes) - 1) / uint64(lineBytes))
	buf := make([]byte, lineBytes)
	for i := 0; i < lines; i++ {
		off := uint64(i * lineBytes)
		n := uint64(lineBytes)
		if off+n > req.Bytes {
			n = req.Bytes - off
		}
		switch req.Dir {
		case ToScratchpad:
			e.phys.Read(pa+mem.PhysAddr(off), buf[:n])
			if err := sp.Write(domain, req.SpadLine+i, buf[:n]); err != nil {
				return fmt.Errorf("dma: scratchpad write: %w", err)
			}
		case ToMemory:
			if err := sp.Read(domain, req.SpadLine+i, buf[:n]); err != nil {
				return fmt.Errorf("dma: scratchpad read: %w", err)
			}
			e.phys.Write(pa+mem.PhysAddr(off), buf[:n])
		}
	}
	return nil
}
