package isolator

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func coords(pairs ...int) []noc.Coord {
	out := make([]noc.Coord, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, noc.Coord{X: pairs[i], Y: pairs[i+1]})
	}
	return out
}

func TestVerifyRouteAccepts2x2(t *testing.T) {
	if err := VerifyRoute(Topology{2, 2}, coords(0, 0, 1, 0, 0, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	// Translated rectangle is fine.
	if err := VerifyRoute(Topology{2, 2}, coords(3, 1, 4, 1, 3, 2, 4, 2)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRouteRejects1x4ForA2x2Task(t *testing.T) {
	// The paper's example attack: right core count, wrong shape.
	err := VerifyRoute(Topology{2, 2}, coords(0, 0, 1, 0, 2, 0, 3, 0))
	if err == nil {
		t.Fatal("1x4 allocation accepted for a 2x2 task")
	}
	if _, ok := err.(*RouteError); !ok {
		t.Fatalf("error type %T", err)
	}
}

func TestVerifyRouteOrientationAllowed(t *testing.T) {
	// A 2x1 task fits a 1x2 allocation (transposed rectangle).
	if err := VerifyRoute(Topology{2, 1}, coords(0, 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRouteRejectsWrongCountDuplicatesAndHoles(t *testing.T) {
	if VerifyRoute(Topology{2, 2}, coords(0, 0, 1, 0)) == nil {
		t.Fatal("short allocation accepted")
	}
	if VerifyRoute(Topology{2, 1}, coords(0, 0, 0, 0)) == nil {
		t.Fatal("duplicate core accepted")
	}
	// L-shape: 3 cores in a 2x2 bounding box plus a far one -> not a
	// rectangle.
	if VerifyRoute(Topology{2, 2}, coords(0, 0, 1, 0, 0, 1, 2, 2)) == nil {
		t.Fatal("non-rectangular allocation accepted")
	}
	if VerifyRoute(Topology{0, 2}, coords()) == nil {
		t.Fatal("degenerate topology accepted")
	}
}

func TestCanonicalOrderRowMajor(t *testing.T) {
	in := coords(1, 1, 0, 0, 1, 0, 0, 1)
	got := CanonicalOrder(in)
	want := coords(0, 0, 1, 0, 0, 1, 1, 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
	// Input untouched.
	if in[0] != (noc.Coord{X: 1, Y: 1}) {
		t.Fatal("CanonicalOrder mutated its input")
	}
}

// Property: any true WxH rectangle anywhere in the plane verifies, in
// any listing order; removing one core or displacing one corner breaks
// it.
func TestVerifyRouteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := rng.Intn(3) + 1
		h := rng.Intn(3) + 1
		ox := rng.Intn(5)
		oy := rng.Intn(5)
		var cs []noc.Coord
		for x := 0; x < w; x++ {
			for y := 0; y < h; y++ {
				cs = append(cs, noc.Coord{X: ox + x, Y: oy + y})
			}
		}
		rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
		if VerifyRoute(Topology{w, h}, cs) != nil {
			return false
		}
		if len(cs) > 1 {
			// Drop one -> wrong count.
			if VerifyRoute(Topology{w, h}, cs[1:]) == nil {
				return false
			}
			// Displace one far away -> not contiguous.
			bad := make([]noc.Coord, len(cs))
			copy(bad, cs)
			bad[0] = noc.Coord{X: ox + 50, Y: oy + 50}
			if VerifyRoute(Topology{w, h}, bad) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
