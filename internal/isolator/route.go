// Package isolator holds the NPU Isolator's route-integrity logic
// (§IV-B "Route integrity"). The scratchpad ID rules live with the
// scratchpad model (internal/spad) and the peephole protocol with the
// NoC model (internal/noc); this package verifies, *before loading*,
// that the NPU cores a (possibly malicious) driver scheduled for a
// multi-core task actually form the NoC topology the task expects —
// e.g., a task built for a 2x2 grid must not be spread over 1x4 cores.
package isolator

import (
	"fmt"
	"sort"

	"repro/internal/noc"
)

// Topology is the task's expected core arrangement: a W x H grid. The
// task's NoC sends assume grid-neighbor communication, so the actual
// allocation must be a (possibly translated/transposed) W x H
// rectangle of cores.
type Topology struct {
	W, H int
}

func (t Topology) String() string { return fmt.Sprintf("%dx%d", t.W, t.H) }

// Cores is the number of cores the topology needs.
func (t Topology) Cores() int { return t.W * t.H }

// RouteError explains a route-integrity rejection.
type RouteError struct {
	Expected Topology
	Got      []noc.Coord
	Reason   string
}

func (e *RouteError) Error() string {
	return fmt.Sprintf("isolator: route integrity: expected %s grid, got %v: %s",
		e.Expected, e.Got, e.Reason)
}

// VerifyRoute checks that the scheduled coordinates form a contiguous
// axis-aligned rectangle matching the expected topology (in either
// orientation — a 2x1 task fits a 1x2 allocation). A malicious
// scheduler that allocates the right *number* of cores in the wrong
// shape (the paper's 2x2-vs-1x4 example) is rejected.
func VerifyRoute(expected Topology, scheduled []noc.Coord) error {
	if expected.W <= 0 || expected.H <= 0 {
		return &RouteError{Expected: expected, Got: scheduled, Reason: "degenerate expected topology"}
	}
	if len(scheduled) != expected.Cores() {
		return &RouteError{Expected: expected, Got: scheduled,
			Reason: fmt.Sprintf("%d cores scheduled, %d required", len(scheduled), expected.Cores())}
	}
	seen := make(map[noc.Coord]bool, len(scheduled))
	minX, minY := scheduled[0].X, scheduled[0].Y
	maxX, maxY := scheduled[0].X, scheduled[0].Y
	for _, c := range scheduled {
		if seen[c] {
			return &RouteError{Expected: expected, Got: scheduled, Reason: fmt.Sprintf("core %v scheduled twice", c)}
		}
		seen[c] = true
		if c.X < minX {
			minX = c.X
		}
		if c.X > maxX {
			maxX = c.X
		}
		if c.Y < minY {
			minY = c.Y
		}
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	w := maxX - minX + 1
	h := maxY - minY + 1
	if w*h != len(scheduled) {
		return &RouteError{Expected: expected, Got: scheduled, Reason: "allocation is not a contiguous rectangle"}
	}
	if !(w == expected.W && h == expected.H) && !(w == expected.H && h == expected.W) {
		return &RouteError{Expected: expected, Got: scheduled,
			Reason: fmt.Sprintf("allocation is %dx%d", w, h)}
	}
	// Every cell of the bounding box must be present (no holes).
	for x := minX; x <= maxX; x++ {
		for y := minY; y <= maxY; y++ {
			if !seen[noc.Coord{X: x, Y: y}] {
				return &RouteError{Expected: expected, Got: scheduled,
					Reason: fmt.Sprintf("hole at %v", noc.Coord{X: x, Y: y})}
			}
		}
	}
	return nil
}

// CanonicalOrder sorts coordinates row-major so task stage i maps onto
// a deterministic core regardless of the order the driver listed them.
func CanonicalOrder(scheduled []noc.Coord) []noc.Coord {
	out := make([]noc.Coord, len(scheduled))
	copy(out, scheduled)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].X < out[j].X
	})
	return out
}
