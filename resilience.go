package snpu

// This file is the system-level fault story: installing a fault plan
// arms every hardware site's injector; RunSecureResilient is the NPU
// Monitor-backed recovery policy on top of the per-site detection
// mechanisms (ECC, CRC+retry, parity, watchdogs).
//
// The escalation ladder, bottom to top:
//
//	site-local    ECC correction, CRC NACK+retry, IOTLB re-walk,
//	              DMA watchdog reissue — invisible above the DMA/NoC API
//	task-level    an unrecovered site error or a hung core surfaces as
//	              an execution error; the Monitor aborts the task
//	              fail-closed (scratchpads scrubbed, Guarder cleared,
//	              model + chunk zeroed) and the run restarts from the
//	              last layer-boundary checkpoint
//	core-level    a core that hangs twice in a row is marked unhealthy
//	              and the task remaps to the next core
//	give-up       past MaxRestarts the task is abandoned; the untrusted
//	              driver sees only the opaque ErrTaskAborted
//
// Nothing here reads a wall clock or global randomness: with the same
// plan the whole ladder replays byte-identically.

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/spad"
	"repro/internal/trace"
)

// ErrTaskAborted is the opaque error the untrusted driver observes
// when a secure task is finally abandoned. It deliberately carries no
// detail about what happened inside the secure world.
var ErrTaskAborted = errors.New("snpu: secure task aborted")

// DefaultMaxRestarts bounds checkpoint restarts per resilient run.
const DefaultMaxRestarts = 3

// InstallFaultPlan arms the whole SoC with a fault schedule: an
// injector is built from the plan and attached to the mesh, every
// core's scratchpads, DMA engine, and translator, and SECDED ECC is
// enabled on physical memory (detection must be armed before damage
// arrives). Installing an empty plan still enables ECC but schedules
// nothing — simulated timing is bit-identical to an uninstrumented
// run, which TestZeroFaultDeterminism pins down.
func (s *System) InstallFaultPlan(p fault.Plan) {
	s.inj = fault.NewInjector(p, s.stats)
	s.acc.AttachInjector(s.inj)
	s.inj.AttachTrace(s.obs.Trace())
	s.phys.EnableECC(s.stats)
}

// Injector exposes the armed injector (nil before InstallFaultPlan).
func (s *System) Injector() *fault.Injector { return s.inj }

// SecureRunReport is an InferenceResult plus recovery accounting.
type SecureRunReport struct {
	InferenceResult
	// Faults is how many scheduled faults fired during the run.
	Faults int64
	// Restarts counts checkpoint restarts after fail-closed aborts.
	Restarts int
	// Remaps counts migrations off a persistently hanging core.
	Remaps int
	// Aborted is true when the task was abandoned (Err returned).
	Aborted bool
}

// RunSecureResilient is RunSecure with the Monitor's recovery policy:
// detection failures below (uncorrectable ECC, exhausted NoC retries,
// scratchpad parity, wedged cores) abort the task fail-closed, then
// the run resubmits and restarts from the last completed layer
// boundary, remapping off a core that hangs twice in a row. The
// restart budget (maxRestarts; <=0 selects DefaultMaxRestarts) counts
// consecutive failures without checkpoint progress — a crash-loop
// detector, not a lifetime cap — and once spent the task is abandoned
// and the caller sees only ErrTaskAborted.
func (s *System) RunSecureResilient(h *SecureTaskHandle, maxRestarts int) (rep SecureRunReport, err error) {
	if s.mon == nil {
		return rep, fmt.Errorf("snpu: baseline system has no monitor")
	}
	if maxRestarts <= 0 {
		maxRestarts = DefaultMaxRestarts
	}
	s.acc.ResetTiming()
	injectedBefore := s.inj.Injected()
	spadLines := s.cfg.NPU.SpadLines()
	prog := h.prog.prog

	core := 0
	checkpoint := 0 // first layer not yet completed
	lastHangCore := -1
	consecutive := 0 // failures since the checkpoint last advanced
	var now sim.Cycle
	// Recovery actions land on the observability timeline (nil-safe
	// no-op sink when observability is off); each restart attempt opens
	// a new trace epoch so the attempts stack as parallel tracks.
	rec := s.obs.Trace()
	defer func() {
		rep.Faults = s.inj.Injected() - injectedBefore
	}()

	for {
		lrep := s.mon.Dispatch(monitor.Call{
			Func: monitor.FnLoad,
			Args: []uint64{uint64(h.ID), 0, uint64(spadLines), uint64(core)},
		})
		if lrep.Err != nil {
			return rep, lrep.Err
		}
		h.Cores = []int{core}
		c, err := s.acc.Core(core)
		if err != nil {
			return rep, err
		}
		ex := npu.NewExec(c, prog, h.ID+10000)
		ex.SkipToLayer(checkpoint)

		// Run layer by layer so the last completed layer boundary is
		// always known — that boundary is the checkpoint.
		boundary := npu.BoundaryLayers(1)
		var runErr error
		for !ex.Done() {
			var done sim.Cycle
			done, runErr = ex.RunUntil(now, boundary)
			if runErr != nil {
				break
			}
			now = done
			if ex.CurrentLayer() > checkpoint {
				checkpoint = ex.CurrentLayer()
				consecutive = 0 // forward progress resets the crash-loop budget
			}
		}

		if runErr == nil {
			if urep := s.mon.Dispatch(monitor.Call{Func: monitor.FnUnload, Args: []uint64{uint64(h.ID)}}); urep.Err != nil {
				return rep, urep.Err
			}
			rep.InferenceResult = InferenceResult{
				Model:       h.prog.w.Name,
				Cycles:      now,
				Utilization: npu.Utilization(prog, now, s.cfg.NPU.SystolicDim),
				MACs:        prog.TotalMACs,
			}
			if s.inj.Injected() > injectedBefore && s.stats != nil {
				s.stats.Inc(sim.CtrRecoveredFaults)
			}
			return rep, nil
		}

		// Something below gave up: escalate to the Monitor. Abort is
		// fail-closed — scratchpads scrubbed, Guarder cleared, model and
		// chunk zeroed — regardless of what we do next.
		var hang *npu.HangError
		if errors.As(runErr, &hang) {
			now = hang.Detected // the watchdog is what notices a hang
		}
		if arep := s.mon.Dispatch(monitor.Call{Func: monitor.FnAbort, Args: []uint64{uint64(h.ID)}}); arep.Err != nil {
			return rep, arep.Err
		}
		rec.Record(trace.Event{
			Name: "monitor.abort", Kind: trace.KindMonitor, Core: core,
			Start: now, End: now,
		})

		if consecutive >= maxRestarts {
			rep.Aborted = true
			rep.Cycles = now // cycles burned before giving up
			if s.stats != nil {
				s.stats.Inc(sim.CtrUnrecoveredFaults)
			}
			return rep, ErrTaskAborted
		}
		consecutive++
		rep.Restarts++
		if s.stats != nil {
			s.stats.Inc(sim.CtrTaskRestarts)
		}
		rec.BeginEpoch(fmt.Sprintf("restart-%d", rep.Restarts), now)

		// A core that hangs twice in a row is unhealthy: remap. The
		// untrusted driver may do this freely — it only ever sees an
		// opaque failure and a new core assignment.
		if hang != nil {
			if hang.Core == lastHangCore {
				core = (core + 1) % s.cfg.NPU.Tiles
				rep.Remaps++
			}
			lastHangCore = hang.Core
		}

		// Restart from the checkpoint: resubmit through the full
		// verification path (measurement, unsealing, allocation), then
		// pay the restore cost of the checkpointed accumulator state.
		srep := s.mon.Dispatch(monitor.Call{
			Func:     monitor.FnSubmit,
			Shared:   h.sealed,
			Program:  prog,
			Expected: prog.Measurement(),
			KeyID:    h.keyID,
		})
		if srep.Err != nil {
			return rep, srep.Err
		}
		h.ID = int(srep.Value)
		restoreFrom := now
		now += spad.FlushCost(npu.FlushLiveBytes(prog), s.cfg.NPU.DRAMBytesPerCycle, s.cfg.NPU.DRAMLatency, s.stats)
		rec.Record(trace.Event{
			Name: "monitor.restore", Kind: trace.KindMonitor, Core: core,
			Start: restoreFrom, End: now,
		})
	}
}
